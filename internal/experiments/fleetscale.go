package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

// The fleet-scale benchmark: how fast the discrete-event engine chews
// through a production-sized client population, whether the sharded
// engine is a pure wall-clock knob (bit-identical results), and whether
// adaptive admission earns its keep on a diurnal load curve.

// ScaleCell is one timed engine run.
type ScaleCell struct {
	Name         string  `json:"name"`
	Clients      int     `json:"clients"`
	Servers      int     `json:"servers"`
	Requests     int     `json:"requests_per_client"`
	Shards       int     `json:"shards"` // 0 = sequential reference engine
	Events       int64   `json:"events"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	P99Ms        float64 `json:"p99_ms"`
	Sheds        int     `json:"sheds"`
}

// AdaptiveCell compares static against adaptive admission on one seed of
// the diurnal overload cell.
type AdaptiveCell struct {
	Seed           uint64  `json:"seed"`
	StaticSheds    int     `json:"static_sheds"`
	StaticMisses   int     `json:"static_deadline_misses"`
	StaticRPS      float64 `json:"static_rps"`
	AdaptiveSheds  int     `json:"adaptive_sheds"`
	AdaptiveMisses int     `json:"adaptive_deadline_misses"`
	AdaptiveRPS    float64 `json:"adaptive_rps"`
}

// ExemplarCell records the tail-sampled exemplar run: the 100k-client
// floor cell re-run with the sampler on and a bounded tracer ring
// attached, plus the structural facts CheckFloor enforces — the slowest-K
// jobs all retained, every retained exemplar assembling into a complete
// span tree whose critical-path segments sum exactly to its latency, and
// the whole flush staying inside the ring's existing memory bound.
type ExemplarCell struct {
	Exemplars     int   `json:"exemplars"`
	Clients       int   `json:"clients"`
	Retained      int   `json:"retained"`
	SlowRetained  int   `json:"slow_retained"`
	CompleteTrees int   `json:"complete_trees"`
	SumExact      int   `json:"sum_exact"`
	RingEvents    int   `json:"ring_events"`
	RingCap       int   `json:"ring_capacity"`
	TraceDropped  int64 `json:"trace_dropped"`
}

// ScaleBench is the machine-readable record make bench writes to
// BENCH_fleet_scale.json.
type ScaleBench struct {
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Parity     string `json:"parity"` // "ok" after the cross-engine byte-identity gate

	// Floor cells: the same 100k-client sweep through both engines.
	Seq      ScaleCell `json:"seq"`
	Par      ScaleCell `json:"par"`
	SpeedupX float64   `json:"speedup_x"` // parallel events/sec over sequential

	// Big is the headline run: a million clients over sixteen servers.
	Big ScaleCell `json:"big"`

	Adaptive []AdaptiveCell `json:"adaptive"`

	// Exemplar is the tail-sampling cell; nil (and absent from the JSON)
	// unless the sweep ran with exemplars > 0, so existing bench artifacts
	// stay byte-identical.
	Exemplar *ExemplarCell `json:"exemplar,omitempty"`
}

// scaleConfig is the shared workload of the timed cells: est-aware policy
// (the most expensive dispatcher — it prices every server per decision)
// over a 16-server heterogeneous pool.
func scaleConfig(clients, rpc, shards int) fleet.Config {
	cfg := fleet.DefaultConfig(clients, 16, fleet.EstAware)
	cfg.RequestsPerClient = rpc
	cfg.Shards = shards
	return cfg
}

func timeCell(name string, cfg fleet.Config) (ScaleCell, error) {
	t0 := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		return ScaleCell{}, fmt.Errorf("%s: %w", name, err)
	}
	el := time.Since(t0).Seconds()
	return ScaleCell{
		Name:         name,
		Clients:      cfg.Clients,
		Servers:      len(cfg.Servers),
		Requests:     cfg.RequestsPerClient,
		Shards:       cfg.Shards,
		Events:       res.Events,
		ElapsedSec:   el,
		EventsPerSec: float64(res.Events) / el,
		P99Ms:        res.P99Ms,
		Sheds:        res.Sheds,
	}, nil
}

// exemplarCell re-runs the floor workload with the tail sampler on and a
// default-capacity tracer ring attached, then scores the retained set:
// how many exemplars came back, how many carry the "slow" (slowest-K)
// category, how many assemble into complete span trees whose root
// duration matches the recorded latency, and on how many the
// critical-path segments sum exactly to the end-to-end latency.
func exemplarCell(clients, shards, k int) (*ExemplarCell, error) {
	cfg := scaleConfig(clients, 10, shards)
	cfg.Exemplars = k
	tr := obs.NewTracer(0)
	cfg.Tracer = tr
	res, err := fleet.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("exemplar cell: %w", err)
	}
	cell := &ExemplarCell{
		Exemplars: k, Clients: clients,
		Retained:   len(res.Exemplars),
		RingEvents: tr.Len(), RingCap: obs.DefaultCapacity,
		TraceDropped: res.TraceDropped,
	}
	trees := make(map[int64]*obs.JobTrace)
	for _, jt := range obs.AssembleSpans(tr.Events()) {
		trees[jt.Job] = jt
	}
	for _, ex := range res.Exemplars {
		for _, c := range ex.Categories {
			if c == "slow" {
				cell.SlowRetained++
				break
			}
		}
		var sum int64
		for _, s := range ex.Segments {
			sum += s.PS
		}
		if sum == ex.LatencyPS {
			cell.SumExact++
		}
		if jt := trees[ex.Job]; jt != nil && jt.Complete && int64(jt.Roots[0].Dur) == ex.LatencyPS {
			cell.CompleteTrees++
		}
	}
	return cell, nil
}

// ScaleSweep runs the full fleet-scale benchmark. clients sizes the
// headline cell (the floor cells are pinned at 100k so the speedup number
// is comparable across runs); shards is the worker count for the parallel
// cells, typically runtime.NumCPU(); exemplars > 0 adds the tail-sampling
// cell retaining that many jobs per category.
func ScaleSweep(clients, shards, exemplars int) (*ScaleBench, error) {
	if shards < 1 {
		shards = runtime.NumCPU()
	}
	b := &ScaleBench{Cores: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}

	// Parity gate: before timing anything, prove the engines agree byte
	// for byte on a cell small enough to run across several shard counts
	// and every policy.
	for _, pol := range fleet.Policies() {
		cfg := fleet.DefaultConfig(64, 4, pol)
		cfg.Seed = 9
		var ref []byte
		for _, s := range []int{0, 1, 4} {
			c := cfg
			c.Shards = s
			res, err := fleet.Run(c)
			if err != nil {
				return nil, fmt.Errorf("parity %s shards=%d: %w", pol, s, err)
			}
			bs, err := json.Marshal(res)
			if err != nil {
				return nil, err
			}
			if s == 0 {
				ref = bs
			} else if string(bs) != string(ref) {
				return nil, fmt.Errorf("parity: %s shards=%d diverged from sequential", pol, s)
			}
		}
	}
	b.Parity = "ok"

	var err error
	if b.Seq, err = timeCell("floor-seq", scaleConfig(100_000, 10, 0)); err != nil {
		return nil, err
	}
	if b.Par, err = timeCell("floor-par", scaleConfig(100_000, 10, shards)); err != nil {
		return nil, err
	}
	b.SpeedupX = b.Par.EventsPerSec / b.Seq.EventsPerSec

	if exemplars > 0 {
		if b.Exemplar, err = exemplarCell(100_000, shards, exemplars); err != nil {
			return nil, err
		}
	}

	rpc := 3 // a million clients need fewer requests each to stay in budget
	if clients < 1 {
		clients = 1_000_000
	}
	if b.Big, err = timeCell("big", scaleConfig(clients, rpc, shards)); err != nil {
		return nil, err
	}

	for seed := uint64(1); seed <= 3; seed++ {
		run := func(adaptive bool) (*fleet.Result, error) {
			cfg := fleet.DefaultConfig(256, 4, fleet.EstAware)
			cfg.Seed = seed
			cfg.RequestsPerClient = 20
			cfg.Workload.DiurnalAmp = 0.8
			cfg.Workload.DiurnalPeriod = 4 * simtime.Second
			cfg.Shards = shards
			if adaptive {
				cfg.Adaptive = fleet.DefaultAdaptive()
			}
			return fleet.Run(cfg)
		}
		st, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("adaptive cell seed=%d static: %w", seed, err)
		}
		ad, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("adaptive cell seed=%d adaptive: %w", seed, err)
		}
		b.Adaptive = append(b.Adaptive, AdaptiveCell{
			Seed:           seed,
			StaticSheds:    st.Sheds,
			StaticMisses:   st.DeadlineMisses,
			StaticRPS:      st.ThroughputRPS,
			AdaptiveSheds:  ad.Sheds,
			AdaptiveMisses: ad.DeadlineMisses,
			AdaptiveRPS:    ad.ThroughputRPS,
		})
	}
	return b, nil
}

// CheckFloor enforces the benchmark's acceptance bar: the engines must
// have agreed byte for byte, adaptive admission must strictly reduce
// sheds + deadline misses on every diurnal seed without losing 5% of
// throughput, and — on machines with the cores to show it — the sharded
// engine must clear 4x the sequential engine's events/sec.
func (b *ScaleBench) CheckFloor() error {
	if b.Parity != "ok" {
		return fmt.Errorf("fleetscale: parity gate did not run")
	}
	for _, c := range b.Adaptive {
		static, adaptive := c.StaticSheds+c.StaticMisses, c.AdaptiveSheds+c.AdaptiveMisses
		if static == 0 {
			return fmt.Errorf("fleetscale: seed %d felt no static pressure; the adaptive cell is vacuous", c.Seed)
		}
		if adaptive >= static {
			return fmt.Errorf("fleetscale: seed %d adaptive pain %d (sheds+misses) not below static %d",
				c.Seed, adaptive, static)
		}
		if c.AdaptiveRPS < 0.95*c.StaticRPS {
			return fmt.Errorf("fleetscale: seed %d adaptive throughput %.1f rps gave up >5%% vs static %.1f",
				c.Seed, c.AdaptiveRPS, c.StaticRPS)
		}
	}
	if b.Cores >= 4 && b.SpeedupX < 4 {
		return fmt.Errorf("fleetscale: %.2fx parallel speedup under the 4x floor on %d cores",
			b.SpeedupX, b.Cores)
	}
	if b.Cores < 4 && b.SpeedupX < 0.8 {
		// Even without cores to scale on, the sharded engine's smaller
		// heaps must not cost real throughput.
		return fmt.Errorf("fleetscale: parallel engine at %.2fx sequential on %d core(s); overhead out of bounds",
			b.SpeedupX, b.Cores)
	}
	if c := b.Exemplar; c != nil {
		if c.SlowRetained != c.Exemplars {
			return fmt.Errorf("fleetscale: exemplar cell retained %d slowest jobs, want all %d",
				c.SlowRetained, c.Exemplars)
		}
		if c.CompleteTrees != c.Retained {
			return fmt.Errorf("fleetscale: only %d of %d retained exemplars assembled complete span trees",
				c.CompleteTrees, c.Retained)
		}
		if c.SumExact != c.Retained {
			return fmt.Errorf("fleetscale: critical-path sum identity failed on %d of %d exemplars",
				c.Retained-c.SumExact, c.Retained)
		}
		if c.RingEvents > c.RingCap {
			return fmt.Errorf("fleetscale: exemplar flush overflowed the trace ring (%d events > cap %d)",
				c.RingEvents, c.RingCap)
		}
	}
	return nil
}

// ScaleTable renders the benchmark for the terminal.
func ScaleTable(b *ScaleBench) *report.Table {
	t := report.New(fmt.Sprintf("Fleet scale: engine throughput on %d core(s), parity %s", b.Cores, b.Parity),
		"cell", "clients", "servers", "shards", "events", "elapsed (s)", "events/sec")
	for _, c := range []ScaleCell{b.Seq, b.Par, b.Big} {
		t.Add(c.Name, c.Clients, c.Servers, c.Shards, c.Events, c.ElapsedSec, c.EventsPerSec)
	}
	t.Note(fmt.Sprintf("parallel vs sequential events/sec: %.2fx (floor 4x arms at >= 4 cores)", b.SpeedupX))
	for _, c := range b.Adaptive {
		t.Note(fmt.Sprintf("diurnal seed %d: static sheds+misses %d -> adaptive %d (rps %.1f -> %.1f)",
			c.Seed, c.StaticSheds+c.StaticMisses, c.AdaptiveSheds+c.AdaptiveMisses, c.StaticRPS, c.AdaptiveRPS))
	}
	if c := b.Exemplar; c != nil {
		t.Note(fmt.Sprintf("exemplars: %d retained over %d clients (%d/%d slowest, %d complete trees, %d exact sums) in %d/%d ring events",
			c.Retained, c.Clients, c.SlowRetained, c.Exemplars, c.CompleteTrees, c.SumExact, c.RingEvents, c.RingCap))
	}
	return t
}

// WriteFleetScaleBench writes the record to path (BENCH_fleet_scale.json
// under make bench).
func WriteFleetScaleBench(path string, b *ScaleBench) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
