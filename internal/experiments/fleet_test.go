package experiments

import (
	"bytes"
	"testing"

	"repro/internal/fleet"
)

// TestFleetSweepDeterministic: the bench artifact must be byte-identical
// across runs of the same sweep — the acceptance bar for BENCH_fleet.json.
func TestFleetSweepDeterministic(t *testing.T) {
	sweep := func(shards int) []byte {
		res, err := FleetSweep([]int{8, 32}, 4, 1, shards)
		if err != nil {
			t.Fatal(err)
		}
		out, err := FleetJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := sweep(0), sweep(0)
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical sweeps produced different JSON:\n%s\n----\n%s", a, b)
	}
	// The sharded engine is a pure wall-clock knob: same bytes.
	if !bytes.Equal(a, sweep(4)) {
		t.Fatal("sharded sweep diverged from the sequential artifact")
	}
}

// TestFleetAcceptanceCell pins the headline claim at the 64-client /
// 4-server cell: contention-aware dispatch beats random on the tail, and
// the load-blind policies overrun admission (nonzero sheds).
func TestFleetAcceptanceCell(t *testing.T) {
	res, err := FleetSweep([]int{64}, 4, 1, 0, fleet.Random, fleet.EstAware)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	rnd, est := res[0], res[1]
	if est.P99Ms >= rnd.P99Ms {
		t.Errorf("est-aware p99 %.1f ms >= random %.1f ms", est.P99Ms, rnd.P99Ms)
	}
	if rnd.Sheds == 0 {
		t.Error("random dispatch at 64/4 shed nothing; overload never materialized")
	}
	if est.GeomeanMs > rnd.GeomeanMs {
		t.Errorf("est-aware geomean %.1f ms > random %.1f ms", est.GeomeanMs, rnd.GeomeanMs)
	}
	table := FleetTable(res)
	if table.String() == "" || len(table.Rows) != 2 {
		t.Error("fleet table did not render both rows")
	}
}
