// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduction's own machinery. Each
// experiment returns a rendered report.Table (or trace text) plus the
// structured numbers, so both the offloadbench CLI and the Go benchmarks
// print the same artifacts.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/offrt"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/survey"
	"repro/internal/tiers"
	"repro/internal/workloads"
)

// ProgramResult bundles one workload's full evaluation: compile statistics
// and the three executions (local, slow network, fast network).
type ProgramResult struct {
	W       *workloads.Workload
	Compile *compiler.Result
	Local   *core.LocalResult
	Slow    *core.OffloadResult
	Fast    *core.OffloadResult
}

// IdealNorm returns the ideal-offloading normalized time (pure compute of
// the fast run over local time).
func (p *ProgramResult) IdealNorm() float64 {
	if p.Local.Time == 0 {
		return 0
	}
	return float64(p.Fast.IdealTime()) / float64(p.Local.Time)
}

var (
	sweepOnce sync.Once
	sweepRes  []*ProgramResult
	sweepErr  error
)

// Sweep evaluates all 17 programs once per process and caches the results;
// Table 4 and Figures 6-8 all read from the same sweep, like the paper's
// single evaluation campaign.
func Sweep() ([]*ProgramResult, error) {
	sweepOnce.Do(func() {
		for _, w := range workloads.All() {
			r, err := RunProgram(w)
			if err != nil {
				sweepErr = fmt.Errorf("%s: %w", w.Name, err)
				return
			}
			sweepRes = append(sweepRes, r)
		}
	})
	return sweepRes, sweepErr
}

// RunProgram evaluates one workload end to end.
func RunProgram(w *workloads.Workload) (*ProgramResult, error) {
	return RunProgramObserved(w, nil, nil)
}

// RunProgramObserved is RunProgram with an optional tracer and metrics
// registry attached to the fast-network offloaded run (the one the paper's
// headline numbers come from). Either may be nil.
func RunProgramObserved(w *workloads.Workload, tracer *obs.Tracer, metrics *obs.Metrics) (*ProgramResult, error) {
	return RunProgramFaulted(w, nil, tracer, metrics)
}

// RunProgramFaulted is RunProgramObserved with an optional fault plan
// injected into the fast-network offloaded run. Graceful degradation is
// asserted either way: a faulted run whose output diverges from the local
// baseline is an error, not a result.
func RunProgramFaulted(w *workloads.Workload, plan *faults.Plan, tracer *obs.Tracer, metrics *obs.Metrics) (*ProgramResult, error) {
	return runProgram(w, plan, tracer, metrics, nil, 0)
}

// RunProgramTiered is RunProgramFaulted with a tier topology behind the
// fast-network session's gate: every offload decision becomes the 3-way
// {local, edge, cloud} placement instead of the binary profitability
// test. The slow-network run keeps the classic gate for comparison.
func RunProgramTiered(w *workloads.Workload, topo *tiers.Topology, plan *faults.Plan, tracer *obs.Tracer, metrics *obs.Metrics) (*ProgramResult, error) {
	return runProgram(w, plan, tracer, metrics, topo, 0)
}

// RunProgramProfiled is RunProgramObserved with a guest sampling profiler
// attached to both machines of the fast-network offloaded run; the flushed
// samplers are in the result's Fast.MobileProf/ServerProf. sampleEvery <= 0
// selects the default period.
func RunProgramProfiled(w *workloads.Workload, tracer *obs.Tracer, metrics *obs.Metrics, sampleEvery simtime.PS) (*ProgramResult, error) {
	if sampleEvery <= 0 {
		sampleEvery = interp.DefaultSamplePeriod
	}
	return runProgram(w, nil, tracer, metrics, nil, sampleEvery)
}

func runProgram(w *workloads.Workload, plan *faults.Plan, tracer *obs.Tracer, metrics *obs.Metrics, topo *tiers.Topology, sampleEvery simtime.PS) (*ProgramResult, error) {
	fast := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, w.CostScale)
	slow := core.NewFramework(core.SlowNetwork).WithScale(workloads.Scale, w.CostScale)
	fast.Tracer, fast.Metrics = tracer, metrics
	fast.Faults = plan
	fast.Tiers = topo
	fast.SampleEvery = sampleEvery

	mod := w.Build()
	prof, err := fast.Profile(mod, w.ProfileIO())
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	// One compilation serves both networks (the binary is the same; only
	// the runtime's dynamic estimation differs).
	cres, err := fast.Compile(mod, prof)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	local, err := fast.RunLocal(mod, w.EvalIO())
	if err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	offFast, err := fast.RunOffloaded(cres, w.EvalIO(), offrt.Policy{})
	if err != nil {
		return nil, fmt.Errorf("fast offload: %w", err)
	}
	offSlow, err := slow.RunOffloaded(cres, w.EvalIO(), offrt.Policy{})
	if err != nil {
		return nil, fmt.Errorf("slow offload: %w", err)
	}
	if offFast.Output != local.Output {
		return nil, fmt.Errorf("fast offload output diverged from local run")
	}
	return &ProgramResult{W: w, Compile: cres, Local: local, Slow: offSlow, Fast: offFast}, nil
}

// Table1 reproduces the chess movement-time comparison across difficulty
// levels 7-11 on the mobile and server architectures.
func Table1(maxDepth int64) *report.Table {
	t := report.New("Table 1: chess movement computation time",
		"Difficulty", "Desktop (s)", "Smartphone (s)", "Gap (x)")
	for depth := int64(7); depth <= maxDepth; depth++ {
		mobile := chessMoveTime(core.NewFramework(core.FastNetwork), depth, true)
		desktop := chessMoveTime(core.NewFramework(core.FastNetwork), depth, false)
		t.Add(depth, desktop.Seconds(), mobile.Seconds(),
			float64(mobile)/float64(desktop))
	}
	t.Note("paper: gap 5.36x-5.89x across levels 7-11")
	return t
}

// chessMoveTime measures one getAITurn computation at the given depth.
func chessMoveTime(fw *core.Framework, depth int64, onMobile bool) simtime.PS {
	fw.CostScale = workloads.ChessCostScale
	if !onMobile {
		fw.Mobile = fw.Server // run the "local" flow on the desktop spec
	}
	mod := workloads.BuildChess(workloads.DefaultChessConfig())
	io := workloads.ChessInput(depth, 1)
	res, err := fw.RunLocal(mod, io)
	if err != nil {
		panic(fmt.Sprintf("table1: %v", err))
	}
	return res.Time
}

// Table2 renders the Android application study.
func Table2() *report.Table {
	t := report.New("Table 2: native code in top 20 open source Android apps",
		"Application", "Version", "Description", "C/C++ LoC", "Total LoC", "Ratio(LoC)%", "Exec Time %")
	for _, a := range survey.Table2() {
		t.Add(a.Name, a.Version, a.Description, a.NativeLoC, a.TotalLoC, a.NativeRatio(), a.ExecPct)
	}
	nh, th := survey.Table2Claim()
	t.Note("%d/20 apps are >50%% native LoC; %d/20 spend >20%% of time in native code (paper: ~one third)", nh, th)
	return t
}

// Table3 reproduces the profiling + static estimation example for the chess
// game, with the paper's assumed parameters (R=5, BW=80 Mbps).
func Table3() (*report.Table, error) {
	fw := core.NewFramework(core.FastNetwork)
	fw.CostScale = workloads.ChessCostScale
	mod := workloads.BuildChess(workloads.DefaultChessConfig())
	prof, err := fw.Profile(mod, workloads.ChessInput(8, 3))
	if err != nil {
		return nil, err
	}
	params := compiler.Default(80_000_000)
	params.Est.R = 5
	res, err := compiler.Compile(mod, prof, params)
	if err != nil {
		return nil, err
	}
	t := report.New("Table 3: chess profiling and performance estimation (R=5, BW=80Mbps)",
		"Candidate", "Exec(s)", "Inv", "Mem(MB)", "Tideal(s)", "Tc(s)", "Tg(s)", "Verdict")
	for _, c := range res.Candidates {
		verdict := "rejected"
		switch {
		case c.Machine:
			verdict = "machine-specific: " + c.Reason
		case c.Selected:
			verdict = "SELECTED"
		case c.Est.Tg > 0:
			verdict = "profitable (nested in selection)"
		}
		t.Add(c.Name, c.Time.Seconds(), c.Invocations,
			float64(c.MemBytes)/1e6, c.Est.Tideal.Seconds(), c.Est.Tc.Seconds(),
			c.Est.Tg.Seconds(), verdict)
	}
	t.Note("paper selects getAITurn and for_i; offloads getAITurn")
	return t, nil
}

// Table4 reproduces the per-program offload statistics.
func Table4() (*report.Table, error) {
	rs, err := Sweep()
	if err != nil {
		return nil, err
	}
	t := report.New("Table 4: details of offloaded programs",
		"Program", "Exec(s)", "Off.Fn", "Ref.GV", "Fptr", "Target", "Cover%", "Inv", "Traf(MB)",
		"paperExec", "paperCov%", "paperInv", "paperTraf")
	for _, r := range rs {
		inv, traffic := invocationsAndTraffic(r.Fast)
		cov := r.Coverage() * 100
		primary := r.Compile.Targets[0]
		t.Add(r.W.Name, r.Local.Time.Seconds(),
			fmt.Sprintf("%d/%d", r.Compile.OffloadedFuncs, r.Compile.TotalFuncs),
			fmt.Sprintf("%d/%d", r.Compile.ReferencedGVs, r.Compile.TotalGVs),
			r.Compile.FptrUses,
			primary.Display, cov, inv, traffic,
			r.W.Paper.ExecTimeSec, r.W.Paper.CoveragePct, r.W.Paper.Invocations, r.W.Paper.TrafficMB)
	}
	t.Note("traffic re-scaled to paper units (x%d); coverage from offloaded compute share", workloads.Scale)
	return t, nil
}

// Coverage returns the fraction of local execution time covered by the
// offloaded tasks: the server compute time scaled back to mobile speed over
// the local run time (Table 4 "Cover.").
func (p *ProgramResult) Coverage() float64 {
	if p.Local.Time == 0 {
		return 0
	}
	r := arch.PerformanceRatio(arch.ARM32(), arch.X8664())
	taskLocal := float64(p.Fast.ServerCompute) * r
	cov := taskLocal / float64(p.Local.Time)
	if cov > 1 {
		cov = 1
	}
	return cov
}

// invocationsAndTraffic sums offload counts and converts per-invocation
// traffic back to paper-scale megabytes.
func invocationsAndTraffic(off *core.OffloadResult) (int, float64) {
	inv := 0
	var bytes int64
	for _, st := range off.PerTask {
		inv += st.Offloads
		bytes += st.TrafficBytes
	}
	if inv == 0 {
		return 0, 0
	}
	perInv := float64(bytes) / float64(inv)
	return inv, perInv * float64(workloads.Scale) / 1e6
}

// ProfileTable renders the sampling profilers' top functions, mobile and
// server side by side — the deterministic "top functions by self/cumulative
// simulated time" companion to the folded flamegraph output. limit <= 0
// renders everything.
func ProfileTable(mobile, server *interp.Sampler, limit int) *report.Table {
	t := report.New("Guest profile: top functions by self time",
		"machine", "function", "self_ms", "cum_ms", "self%")
	add := func(name string, s *interp.Sampler) {
		total := s.Total()
		rows := s.TopFuncs()
		if limit > 0 && len(rows) > limit {
			rows = rows[:limit]
		}
		for _, f := range rows {
			share := 0.0
			if total > 0 {
				share = 100 * float64(f.SelfPS) / float64(total)
			}
			t.Add(name, f.Name, simtime.PS(f.SelfPS).Millis(), simtime.PS(f.CumPS).Millis(),
				fmt.Sprintf("%.1f%%", share))
		}
	}
	add("mobile", mobile)
	add("server", server)
	t.Note("simulated-clock sampling, period mobile=%v server=%v; (idle) is accept-loop wait",
		mobile.Period(), server.Period())
	return t
}

// Table5 renders the related-work comparison.
func Table5() *report.Table {
	t := report.New("Table 5: comparison of computation offload systems",
		"System", "Fully-Automatic", "Decision", "Requires VM", "Language", "Target Complexity")
	for _, s := range survey.Table5() {
		auto := "Yes"
		if !s.FullyAutomatic {
			auto = "No (" + s.Manual + ")"
		}
		vm := "No"
		if s.RequiresVM {
			vm = "Yes"
		}
		t.Add(s.Name, auto, s.Decision, vm, s.Language, s.Complexity)
	}
	t.Note("Native Offloader is the only fully-automatic, dynamic, VM-free system for complex C programs")
	return t
}
