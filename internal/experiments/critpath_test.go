package experiments

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// TestCritPathMatchesSessionStats is the per-job refinement of the
// Breakdown acceptance bar: replaying a real session trace through the
// critical-path analyzer must hand every offload job a complete span tree
// whose causally-ordered segments sum *bit-exactly* to its latency, and
// the job totals together must reproduce SessionStats.E2ELatency — the
// analyzer explains every picosecond the runtime accounted, one job at a
// time.
func TestCritPathMatchesSessionStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an offloaded execution")
	}
	tracer := obs.NewTracer(1 << 20)
	w := workloads.ByName("433.milc")
	r, err := RunProgramObserved(w, tracer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := tracer.Dropped(); d != 0 {
		t.Fatalf("trace truncated: %d events dropped — grow the test tracer", d)
	}

	cs := analyze.Crit(tracer.Events())
	if len(cs.Jobs) == 0 {
		t.Fatal("no jobs assembled from the session trace")
	}
	var total simtime.PS
	offloads := 0
	for _, cp := range cs.Jobs {
		if cp.Total == 0 {
			continue // a declined job retains only its verdict instant
		}
		offloads++
		if !cp.Complete {
			t.Errorf("job %d: incomplete span tree on an undropped trace", cp.Job)
		}
		if got := cp.SegSum(); got != cp.Total {
			t.Errorf("job %d: segments sum to %v, job total is %v", cp.Job, got, cp.Total)
		}
		for _, s := range cp.Segments {
			if s.Dur < 0 {
				t.Errorf("job %d: negative segment %s = %v", cp.Job, s.Name, s.Dur)
			}
		}
		total += cp.Total
	}
	if offloads == 0 {
		t.Fatal("no offload jobs decomposed: the identity is vacuous")
	}
	if want := r.Fast.Stats.E2ELatency; total != want {
		t.Errorf("per-job totals sum to %v, SessionStats.E2ELatency is %v", total, want)
	}
}
