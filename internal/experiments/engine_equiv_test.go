package experiments

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// engineResult captures everything the two engines must agree on for one
// standalone (non-offloaded) run of a program.
type engineResult struct {
	code   int32
	errStr string
	out    string
	steps  int64
	clock  simtime.PS
	comp   [interp.NumComponents]simtime.PS
	digest uint64
}

func runWorkloadEngine(t *testing.T, mod *ir.Module, io *interp.StdIO, costScale int64, eng interp.Engine) engineResult {
	t.Helper()
	work := mod.Clone(mod.Name)
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	m, err := interp.NewMachine(interp.Config{
		Name:           "equiv",
		Spec:           spec,
		Mod:            work,
		CostScale:      costScale,
		IO:             io,
		InitUVAGlobals: true,
		Engine:         eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	var r engineResult
	r.code, err = m.RunMain()
	if err != nil {
		r.errStr = err.Error()
	}
	r.out = io.Out.String()
	r.steps = m.Steps
	r.clock = m.Clock
	r.comp = m.Comp
	r.digest = m.Mem.Digest(mem.StackRanges()...)
	return r
}

// TestEngineEquivalenceAllWorkloads runs every registered SPEC-like workload
// plus the chess running example under both execution engines and demands
// bit-identical results: output, exit code, instruction count, simulated
// clock, per-component buckets, and the semantic memory digest. This is the
// "all example programs" leg of the differential acceptance criteria (the
// random-program leg lives in internal/interp).
func TestEngineEquivalenceAllWorkloads(t *testing.T) {
	type prog struct {
		name      string
		mod       *ir.Module
		io        func() *interp.StdIO
		costScale int64
	}
	var progs []prog
	for _, w := range workloads.All() {
		progs = append(progs, prog{w.Name, w.Build(), w.ProfileIO, w.CostScale})
	}
	progs = append(progs, prog{
		name:      "chess",
		mod:       workloads.BuildChess(workloads.DefaultChessConfig()),
		io:        func() *interp.StdIO { return workloads.ChessInput(5, 1) },
		costScale: workloads.ChessCostScale,
	})
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			fast := runWorkloadEngine(t, p.mod, p.io(), p.costScale, interp.EngineFast)
			ref := runWorkloadEngine(t, p.mod, p.io(), p.costScale, interp.EngineRef)
			if fast.errStr != ref.errStr {
				t.Fatalf("error mismatch:\n fast: %q\n  ref: %q", fast.errStr, ref.errStr)
			}
			if fast.code != ref.code {
				t.Errorf("exit code: fast %d, ref %d", fast.code, ref.code)
			}
			if fast.out != ref.out {
				t.Errorf("output mismatch:\n fast: %q\n  ref: %q", fast.out, ref.out)
			}
			if fast.steps != ref.steps {
				t.Errorf("steps: fast %d, ref %d", fast.steps, ref.steps)
			}
			if fast.clock != ref.clock {
				t.Errorf("clock: fast %v, ref %v", fast.clock, ref.clock)
			}
			if fast.comp != ref.comp {
				t.Errorf("component buckets: fast %v, ref %v", fast.comp, ref.comp)
			}
			if fast.digest != ref.digest {
				t.Errorf("memory digest: fast %#x, ref %#x", fast.digest, ref.digest)
			}
		})
	}
}
