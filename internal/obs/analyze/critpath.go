package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

// Critical-path analysis over assembled span trees: walk a retained
// exemplar's tree into the causally-ordered segments its end-to-end
// latency decomposes into, with the invariant that the segments sum
// *exactly* to the job's total — the per-job refinement of Breakdown's
// aggregate identity. Fleet exemplars carry explicit KJobSeg segments
// that partition the root by construction; session (offrt) traces derive
// their segments from the communication-shaped child spans with the
// server's execution as the exact remainder, mirroring Breakdown.

// Segment is one causally-ordered interval of a job's critical path.
type Segment struct {
	Name   string
	Track  obs.Track
	Server int64 // server the interval ran against, -1 when n/a
	Start  simtime.PS
	Dur    simtime.PS
}

// CritPath is one job's critical-path decomposition.
type CritPath struct {
	Job     int64
	Client  int64
	Outcome string
	Start   simtime.PS
	// Total is the job's end-to-end latency (the root span's duration) —
	// exactly what fleet Stats recorded for it, and what the per-offload
	// slice of SessionStats.E2ELatency is for a session trace.
	Total simtime.PS
	// Complete mirrors the assembled tree: false when ring wraparound ate
	// part of the job, in which case the sum identity is not claimed.
	Complete bool
	Segments []Segment
}

// SegSum sums the segment durations; on a Complete path it equals Total.
func (cp *CritPath) SegSum() simtime.PS {
	var t simtime.PS
	for _, s := range cp.Segments {
		t += s.Dur
	}
	return t
}

// CritSummary is the critical-path view of every job in a trace.
type CritSummary struct {
	Jobs []*CritPath
}

// Crit assembles the stream's span trees and decomposes each job.
func Crit(events []obs.Event) *CritSummary {
	cs := &CritSummary{}
	for _, jt := range obs.AssembleSpans(events) {
		cs.Jobs = append(cs.Jobs, FromTrace(jt))
	}
	return cs
}

// FromTrace decomposes one assembled job tree. The widest root is the
// job's span; its direct children yield the segments:
//
//   - KJobSeg children (fleet exemplars) are taken verbatim — the fleet
//     emits them as an exact partition of the root, so no remainder
//     remains;
//   - communication-shaped children of a session offload (first
//     to_server message = init, page-fault services, remote I/O,
//     write-back) become segments and the gap left over is the server's
//     execution, charged as one "remote.compute" remainder segment —
//     Breakdown's Compute definition, so the identity stays exact.
//
// Jobs with no span root (a gate-declined session job retains only its
// verdict instant) decompose to an empty path with Total 0.
func FromTrace(jt *obs.JobTrace) *CritPath {
	cp := &CritPath{Job: jt.Job, Client: -1, Complete: jt.Complete}
	if len(jt.Roots) == 0 {
		return cp
	}
	root := jt.Roots[0]
	for _, r := range jt.Roots[1:] {
		// Instant roots (a gate verdict fired just before the span opened)
		// and truncation orphans can precede the job's enclosing interval;
		// the widest root is the span the analysis decomposes.
		if r.Dur > root.Dur {
			root = r
		}
	}
	cp.Outcome = root.Name
	cp.Start = root.Time
	cp.Total = root.Dur
	switch root.Kind {
	case obs.KJob:
		cp.Client = root.A0
	case obs.KOffload, obs.KFallback:
		// Session traces have no client id; the task id stands in.
		cp.Client = root.A0
	}
	sawInit := false
	for _, c := range root.Children {
		switch c.Kind {
		case obs.KJobSeg:
			cp.Segments = append(cp.Segments, Segment{
				Name: c.Name, Track: c.Track, Server: c.A1, Start: c.Time, Dur: c.Dur})
		case obs.KMessage:
			if !sawInit && c.Name == "to_server" && c.Dur > 0 {
				cp.Segments = append(cp.Segments, Segment{
					Name: "init", Track: c.Track, Server: -1, Start: c.Time, Dur: c.Dur})
				sawInit = true
			}
		case obs.KPageFault:
			if c.Dur > 0 {
				cp.Segments = append(cp.Segments, Segment{
					Name: "page.fault", Track: c.Track, Server: -1, Start: c.Time, Dur: c.Dur})
			}
		case obs.KRemoteIO:
			if c.Dur > 0 {
				cp.Segments = append(cp.Segments, Segment{
					Name: "remote.io", Track: c.Track, Server: -1, Start: c.Time, Dur: c.Dur})
			}
		case obs.KWriteBack:
			if c.Dur > 0 {
				cp.Segments = append(cp.Segments, Segment{
					Name: "write.back", Track: c.Track, Server: -1, Start: c.Time, Dur: c.Dur})
			}
		}
	}
	if rem := cp.Total - cp.SegSum(); rem != 0 && root.Kind != obs.KJob {
		// The uncovered remainder of a session offload is the server's
		// execution (plus any retry backoff the trace does not separate) —
		// appending it restores the exact partition.
		cp.Segments = append(cp.Segments, Segment{
			Name: "remote.compute", Track: obs.TrackServer, Server: -1, Dur: rem})
	}
	return cp
}

// Tail returns the jobs at or above the q-quantile of Total (0.99 asks
// where the p99 lives), slowest first.
func (cs *CritSummary) Tail(q float64) []*CritPath {
	jobs := make([]*CritPath, 0, len(cs.Jobs))
	for _, cp := range cs.Jobs {
		if cp.Total > 0 {
			jobs = append(jobs, cp)
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Total != jobs[b].Total {
			return jobs[a].Total > jobs[b].Total
		}
		return jobs[a].Job < jobs[b].Job
	})
	n := len(jobs) - int(q*float64(len(jobs)))
	if n < 1 {
		n = 1
	}
	return jobs[:n]
}

// Top returns a summary restricted to the n slowest jobs (all of them
// when n <= 0 or n exceeds the population), slowest first — the CLI's
// -exemplars cap on the per-job table.
func (cs *CritSummary) Top(n int) *CritSummary {
	jobs := cs.Tail(0) // every positive-latency job, slowest first
	if n > 0 && n < len(jobs) {
		jobs = jobs[:n]
	}
	return &CritSummary{Jobs: jobs}
}

// CritTable renders the per-job decomposition: one row per job, its
// segments inline in causal order.
func CritTable(cs *CritSummary) *report.Table {
	t := report.New("Per-job critical path (causally ordered segments)",
		"job", "outcome", "total_ms", "segments")
	for _, cp := range cs.Jobs {
		if cp.Total == 0 {
			continue
		}
		segs := ""
		for i, s := range cp.Segments {
			if i > 0 {
				segs += " + "
			}
			segs += s.Name
		}
		t.Add(cp.Job, cp.Outcome, cp.Total.Millis(), segs)
	}
	return t
}

// WhereTable is the aggregate "where does the p99 live" view: over the
// tail jobs at or above the q-quantile, the share of tail latency each
// segment name accounts for, largest first.
func WhereTable(cs *CritSummary, q float64) *report.Table {
	tail := cs.Tail(q)
	per := make(map[string]simtime.PS)
	var names []string
	var total simtime.PS
	for _, cp := range tail {
		for _, s := range cp.Segments {
			if _, ok := per[s.Name]; !ok {
				names = append(names, s.Name)
			}
			per[s.Name] += s.Dur
			total += s.Dur
		}
	}
	sort.Slice(names, func(a, b int) bool {
		if per[names[a]] != per[names[b]] {
			return per[names[a]] > per[names[b]]
		}
		return names[a] < names[b]
	})
	t := report.New("Where the tail lives (segment share of slowest jobs)",
		"segment", "total_ms", "share")
	for _, n := range names {
		share := 0.0
		if total > 0 {
			share = 100 * float64(per[n]) / float64(total)
		}
		t.Add(n, per[n].Millis(), fmt.Sprintf("%.1f%%", share))
	}
	t.Note("%d job(s) at or above the q=%.2f latency quantile", len(tail), q)
	return t
}
