// Package analyze replays a Tracer's event stream into the causal
// breakdowns behind the paper's figures: per-offload time attribution
// (initialization / compute / page faults / remote I/O / write-back —
// Figure 6's shape) and radio-state energy attribution (Figure 7/8's
// shape). It is a pure post-processor: everything here derives from the
// structured events the runtime already emits, so any captured trace —
// live session, chaos run, or a loaded file — analyzes identically.
package analyze

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

// Offload is the causal time breakdown of one completed offload. The five
// components partition Total exactly: Compute is defined as the remainder
// once the communication-shaped phases are subtracted, so it folds in the
// server's execution together with retry backoff and the return transfer
// the trace does not separate.
type Offload struct {
	Task  int64
	Name  string
	Start simtime.PS
	Total simtime.PS

	Init      simtime.PS // offload request + prefetch transfer
	Compute   simtime.PS // remainder: server execution (incl. recovery waits)
	Fault     simtime.PS // copy-on-demand page-fault service
	IO        simtime.PS // remote I/O (r_printf et al.) round trips
	WriteBack simtime.PS // finalization write-back transfer

	Faults int // remote page faults served
}

// Summary aggregates a Breakdown run.
type Summary struct {
	Offloads  []Offload
	Fallbacks int // offloads abandoned to local re-execution (no breakdown)
}

// Total is the summed end-to-end latency of the completed offloads; on a
// fault-free trace it equals SessionStats.E2ELatency.
func (s *Summary) Total() simtime.PS {
	var t simtime.PS
	for _, o := range s.Offloads {
		t += o.Total
	}
	return t
}

// Breakdown replays the event stream and reconstructs each offload's
// components. The runtime's emission order within one offload is fixed
// (prefetch, request message, server-side spans, write-back, then the
// closing KOffload span), and sessions are strictly sequential, so a
// simple accumulator per open offload suffices.
func Breakdown(events []obs.Event) *Summary {
	sum := &Summary{}
	var cur Offload
	open := false
	sawInit := false
	for _, ev := range events {
		switch ev.Kind {
		case obs.KPrefetch:
			cur = Offload{}
			open = true
			sawInit = false
		case obs.KMessage:
			// The first to_server message after a prefetch is the offload
			// request (initialization); later ones belong to faults or
			// remote I/O and are already covered by their spans.
			if open && !sawInit && ev.Name == "to_server" {
				cur.Init = ev.Dur
				sawInit = true
			}
		case obs.KPageFault:
			if open && ev.Dur > 0 {
				cur.Fault += ev.Dur
				cur.Faults++
			}
		case obs.KRemoteIO:
			if open {
				cur.IO += ev.Dur
			}
		case obs.KWriteBack:
			if open {
				cur.WriteBack += ev.Dur
			}
		case obs.KOffload:
			if open {
				cur.Task = ev.A0
				cur.Name = ev.Name
				cur.Start = ev.Time
				cur.Total = ev.Dur
				cur.Compute = ev.Dur - cur.Init - cur.Fault - cur.IO - cur.WriteBack
				sum.Offloads = append(sum.Offloads, cur)
				open = false
			}
		case obs.KFallback:
			if open {
				// The offload was abandoned; its time went to local
				// re-execution and has no remote breakdown.
				open = false
				sum.Fallbacks++
			}
		}
	}
	return sum
}

// RadioEnergy attributes energy to radio power states by integrating the
// traced KRadio segments against a power model. The tracer receives one
// event per recorder segment, so on an untruncated trace PerStateMJ sums
// to energy.Recorder.EnergyMJ of the same model.
type RadioEnergy struct {
	Model      string
	PerStateMJ [energy.NumStates]float64
	PerStatePS [energy.NumStates]simtime.PS
}

// TotalMJ sums the per-state attribution.
func (r *RadioEnergy) TotalMJ() float64 {
	var t float64
	for _, mj := range r.PerStateMJ {
		t += mj
	}
	return t
}

// Radio integrates the KRadio segments of an event stream under model.
func Radio(events []obs.Event, model energy.PowerModel) *RadioEnergy {
	byName := make(map[string]energy.State, energy.NumStates)
	for s := energy.State(0); s < energy.NumStates; s++ {
		byName[s.String()] = s
	}
	re := &RadioEnergy{Model: model.Name}
	for _, ev := range events {
		if ev.Kind != obs.KRadio {
			continue
		}
		s, ok := byName[ev.Name]
		if !ok {
			continue
		}
		re.PerStatePS[s] += ev.Dur
		re.PerStateMJ[s] += model.MW[s] * ev.Dur.Seconds()
	}
	return re
}

// TimeTable renders the per-offload breakdown in the Figure 6 shape: one
// row per offload, components in milliseconds plus the component share of
// the total.
func TimeTable(s *Summary) *report.Table {
	t := report.New("Per-offload time breakdown (Fig. 6 shape)",
		"task", "name", "total_ms", "init_ms", "compute_ms", "fault_ms", "io_ms", "writeback_ms", "faults")
	var tot Offload
	for _, o := range s.Offloads {
		t.Add(o.Task, o.Name, o.Total.Millis(), o.Init.Millis(), o.Compute.Millis(),
			o.Fault.Millis(), o.IO.Millis(), o.WriteBack.Millis(), o.Faults)
		tot.Total += o.Total
		tot.Init += o.Init
		tot.Compute += o.Compute
		tot.Fault += o.Fault
		tot.IO += o.IO
		tot.WriteBack += o.WriteBack
		tot.Faults += o.Faults
	}
	if n := len(s.Offloads); n > 1 {
		t.Add("-", "total", tot.Total.Millis(), tot.Init.Millis(), tot.Compute.Millis(),
			tot.Fault.Millis(), tot.IO.Millis(), tot.WriteBack.Millis(), tot.Faults)
	}
	if s.Fallbacks > 0 {
		t.Note("%d offload(s) fell back to local execution (not broken down)", s.Fallbacks)
	}
	if tot.Total > 0 {
		t.Note("components: init %.1f%%, compute %.1f%%, fault %.1f%%, io %.1f%%, writeback %.1f%%",
			100*float64(tot.Init)/float64(tot.Total),
			100*float64(tot.Compute)/float64(tot.Total),
			100*float64(tot.Fault)/float64(tot.Total),
			100*float64(tot.IO)/float64(tot.Total),
			100*float64(tot.WriteBack)/float64(tot.Total))
	}
	return t
}

// RadioTable renders the radio-state energy attribution in the Figure 7/8
// shape: one row per power state with its residency and energy.
func RadioTable(r *RadioEnergy) *report.Table {
	t := report.New(fmt.Sprintf("Radio-state energy attribution (%s model, Fig. 7 shape)", r.Model),
		"state", "time_ms", "energy_mj", "share")
	total := r.TotalMJ()
	for s := energy.State(0); s < energy.NumStates; s++ {
		if r.PerStatePS[s] == 0 && r.PerStateMJ[s] == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * r.PerStateMJ[s] / total
		}
		t.Add(s.String(), r.PerStatePS[s].Millis(), r.PerStateMJ[s], fmt.Sprintf("%.1f%%", share))
	}
	t.Note("total %.2f mJ over traced radio segments", total)
	return t
}
