package analyze

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/goldentest"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// sessionTrace builds a deterministic two-offload trace in the runtime's
// emission order: a clean offload, then one that aborts into a fallback.
func sessionTrace() *obs.Tracer {
	ms := simtime.Millisecond
	tr := obs.NewTracer(64)
	// Offload 1: init 3ms, one 2ms fault, 1ms remote I/O, 4ms write-back,
	// 40ms total -> 30ms compute remainder.
	tr.Emit(obs.Event{Time: 1 * ms, Kind: obs.KPrefetch, Track: obs.TrackMobile, A0: 16, A1: 16 * 4096})
	tr.Emit(obs.Event{Time: 1 * ms, Dur: 3 * ms, Kind: obs.KMessage, Track: obs.TrackLink,
		Name: "to_server", A0: 66000})
	tr.Emit(obs.Event{Time: 4 * ms, Kind: obs.KTaskEnter, Track: obs.TrackServer, A0: 1})
	tr.Emit(obs.Event{Time: 9 * ms, Dur: 2 * ms, Kind: obs.KPageFault, Track: obs.TrackServer,
		Name: "remote", A0: 0x7FFFe, A1: 0x7FFF_E000, A2: 4112})
	tr.Emit(obs.Event{Time: 10 * ms, Kind: obs.KPageFault, Track: obs.TrackServer,
		Name: "zero-fill", A0: 0x7FF00}) // zero duration: local, not counted
	tr.Emit(obs.Event{Time: 14 * ms, Dur: 1 * ms, Kind: obs.KRemoteIO, Track: obs.TrackServer,
		Name: "printf", A0: 24})
	tr.Emit(obs.Event{Time: 14 * ms, Dur: 1 * ms, Kind: obs.KMessage, Track: obs.TrackLink,
		Name: "to_server", A0: 64}) // later to_server message: not init
	tr.Emit(obs.Event{Time: 36 * ms, Dur: 4 * ms, Kind: obs.KWriteBack, Track: obs.TrackServer,
		A0: 12, A1: 49152, A2: 9300})
	tr.Emit(obs.Event{Time: 40 * ms, Kind: obs.KTaskExit, Track: obs.TrackServer})
	tr.Emit(obs.Event{Time: 1 * ms, Dur: 40 * ms, Kind: obs.KOffload, Track: obs.TrackMobile,
		Name: "crunch", A0: 1})
	// Offload 2: aborts mid-flight and falls back locally.
	tr.Emit(obs.Event{Time: 50 * ms, Kind: obs.KPrefetch, Track: obs.TrackMobile, A0: 4, A1: 4 * 4096})
	tr.Emit(obs.Event{Time: 50 * ms, Dur: 2 * ms, Kind: obs.KMessage, Track: obs.TrackLink,
		Name: "to_server", A0: 17000})
	tr.Emit(obs.Event{Time: 55 * ms, Kind: obs.KAbort, Track: obs.TrackServer, Name: "page.request", A0: 1})
	tr.Emit(obs.Event{Time: 57 * ms, Dur: 90 * ms, Kind: obs.KFallback, Track: obs.TrackMobile,
		Name: "crunch", A0: 1})
	// Radio timeline (matches a recorder's segment stream 1:1).
	tr.Emit(obs.Event{Time: 0, Dur: 1 * ms, Kind: obs.KRadio, Track: obs.TrackRadio, Name: "compute"})
	tr.Emit(obs.Event{Time: 1 * ms, Dur: 3 * ms, Kind: obs.KRadio, Track: obs.TrackRadio, Name: "tx"})
	tr.Emit(obs.Event{Time: 4 * ms, Dur: 32 * ms, Kind: obs.KRadio, Track: obs.TrackRadio, Name: "wait"})
	tr.Emit(obs.Event{Time: 36 * ms, Dur: 4 * ms, Kind: obs.KRadio, Track: obs.TrackRadio, Name: "rx"})
	tr.Emit(obs.Event{Time: 40 * ms, Dur: 2 * ms, Kind: obs.KRadio, Track: obs.TrackRadio, Name: "ioserve"})
	return tr
}

func TestBreakdown(t *testing.T) {
	ms := simtime.Millisecond
	s := Breakdown(sessionTrace().Events())
	if len(s.Offloads) != 1 || s.Fallbacks != 1 {
		t.Fatalf("offloads/fallbacks = %d/%d, want 1/1", len(s.Offloads), s.Fallbacks)
	}
	o := s.Offloads[0]
	if o.Task != 1 || o.Name != "crunch" || o.Start != 1*ms {
		t.Errorf("identity fields wrong: %+v", o)
	}
	want := Offload{Task: 1, Name: "crunch", Start: 1 * ms, Total: 40 * ms,
		Init: 3 * ms, Compute: 30 * ms, Fault: 2 * ms, IO: 1 * ms, WriteBack: 4 * ms, Faults: 1}
	if o != want {
		t.Errorf("breakdown = %+v, want %+v", o, want)
	}
	// The components partition the total by construction; pin it anyway.
	if got := o.Init + o.Compute + o.Fault + o.IO + o.WriteBack; got != o.Total {
		t.Errorf("components sum to %v, total is %v", got, o.Total)
	}
	if s.Total() != 40*ms {
		t.Errorf("summary total = %v, want 40ms", s.Total())
	}
}

func TestRadioMatchesRecorder(t *testing.T) {
	// A recorder and the trace replay must attribute identical energy:
	// Transition emits exactly one KRadio event per segment.
	ms := simtime.Millisecond
	tr := obs.NewTracer(16)
	rec := energy.NewRecorder(0, energy.Compute)
	rec.Tracer = tr
	rec.Transition(1*ms, energy.TX)
	rec.Transition(4*ms, energy.Wait)
	rec.Pulse(10*ms, 2*ms, energy.TX)
	rec.Transition(36*ms, energy.RX)
	rec.Finish(40 * ms)

	for _, model := range []energy.PowerModel{energy.FastModel(), energy.SlowModel()} {
		re := Radio(tr.Events(), model)
		want := rec.EnergyMJ(model)
		if diff := math.Abs(re.TotalMJ() - want); diff > 1e-9*math.Abs(want) {
			t.Errorf("%s: replayed %.9f mJ, recorder %.9f mJ", model.Name, re.TotalMJ(), want)
		}
	}
}

func TestBreakdownTablesGolden(t *testing.T) {
	evs := sessionTrace().Events()
	s := Breakdown(evs)
	re := Radio(evs, energy.FastModel())
	out := TimeTable(s).String() + "\n" + RadioTable(re).String()
	goldentest.Check(t, "breakdown_golden.txt", []byte(out))
}
