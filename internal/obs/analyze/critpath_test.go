package analyze

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// critTracer builds one fleet-style exemplar (KJob root partitioned by
// KJobSeg segments) and one session-style offload (KOffload root with
// communication children and a compute remainder).
func critTracer() *obs.Tracer {
	ms := simtime.Millisecond
	tr := obs.NewTracer(64)
	tr.Emit(obs.Event{Time: 10 * ms, Dur: 20 * ms, Kind: obs.KJob, Track: obs.TrackMobile,
		Name: "offload", Job: 42, A0: 7, A1: 2})
	tr.Emit(obs.Event{Time: 10 * ms, Dur: 4 * ms, Kind: obs.KJobSeg, Track: obs.TrackLink,
		Name: "uplink", Job: 42, A0: 7, A1: -1})
	tr.Emit(obs.Event{Time: 14 * ms, Dur: 6 * ms, Kind: obs.KJobSeg, Track: obs.TrackEdge,
		Name: "queue", Job: 42, A0: 7, A1: 2})
	tr.Emit(obs.Event{Time: 20 * ms, Dur: 10 * ms, Kind: obs.KJobSeg, Track: obs.TrackEdge,
		Name: "run", Job: 42, A0: 7, A1: 2})

	tr.Emit(obs.Event{Time: 50 * ms, Kind: obs.KGate, Track: obs.TrackMobile, Name: "offload", Job: 3})
	tr.Emit(obs.Event{Time: 51 * ms, Dur: 40 * ms, Kind: obs.KOffload, Track: obs.TrackMobile,
		Name: "crunch", Job: 3, A0: 1})
	tr.Emit(obs.Event{Time: 51 * ms, Dur: 3 * ms, Kind: obs.KMessage, Track: obs.TrackLink,
		Name: "to_server", Job: 3, A0: 66000})
	tr.Emit(obs.Event{Time: 60 * ms, Dur: 2 * ms, Kind: obs.KPageFault, Track: obs.TrackServer,
		Name: "remote", Job: 3})
	tr.Emit(obs.Event{Time: 70 * ms, Dur: 1 * ms, Kind: obs.KRemoteIO, Track: obs.TrackServer,
		Name: "printf", Job: 3})
	tr.Emit(obs.Event{Time: 86 * ms, Dur: 4 * ms, Kind: obs.KWriteBack, Track: obs.TrackServer,
		Job: 3})
	return tr
}

func TestCritDecomposesBothRootShapes(t *testing.T) {
	ms := simtime.Millisecond
	cs := Crit(critTracer().Events())
	if len(cs.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(cs.Jobs))
	}
	byJob := map[int64]*CritPath{}
	for _, cp := range cs.Jobs {
		byJob[cp.Job] = cp
	}

	// Fleet exemplar: segments verbatim, no remainder appended.
	fl := byJob[42]
	if fl == nil || !fl.Complete {
		t.Fatal("fleet job 42 missing or incomplete")
	}
	if got := len(fl.Segments); got != 3 {
		t.Fatalf("fleet job has %d segments, want 3 (no synthetic remainder)", got)
	}
	if fl.SegSum() != fl.Total || fl.Total != 20*ms {
		t.Errorf("fleet job: segments %v, total %v, want exact 20ms partition", fl.SegSum(), fl.Total)
	}

	// Session offload: init + fault + io + write-back, with the server's
	// compute charged as the exact remainder.
	se := byJob[3]
	if se == nil || !se.Complete {
		t.Fatal("session job 3 missing or incomplete (the gate instant must not break completeness)")
	}
	if se.SegSum() != se.Total || se.Total != 40*ms {
		t.Errorf("session job: segments %v, total %v, want exact 40ms partition", se.SegSum(), se.Total)
	}
	var compute simtime.PS
	names := map[string]bool{}
	for _, s := range se.Segments {
		names[s.Name] = true
		if s.Name == "remote.compute" {
			compute = s.Dur
		}
	}
	for _, want := range []string{"init", "page.fault", "remote.io", "write.back", "remote.compute"} {
		if !names[want] {
			t.Errorf("session decomposition missing segment %q (got %v)", want, names)
		}
	}
	if want := 40*ms - 3*ms - 2*ms - 1*ms - 4*ms; compute != want {
		t.Errorf("remote.compute = %v, want the exact %v remainder", compute, want)
	}
}

func TestTailAndTopOrderSlowestFirst(t *testing.T) {
	cs := Crit(critTracer().Events())
	top := cs.Top(1)
	if len(top.Jobs) != 1 || top.Jobs[0].Job != 3 {
		t.Fatalf("Top(1) = %v, want the 40ms session job", top.Jobs)
	}
	all := cs.Top(0)
	if len(all.Jobs) != 2 || all.Jobs[0].Total < all.Jobs[1].Total {
		t.Errorf("Top(0) must return everything slowest-first, got %v", all.Jobs)
	}
	if tail := cs.Tail(0.99); len(tail) != 1 || tail[0].Job != 3 {
		t.Errorf("Tail(0.99) = %v, want just the slowest job", tail)
	}
}

func TestCritTablesRender(t *testing.T) {
	cs := Crit(critTracer().Events())
	if s := CritTable(cs).String(); !strings.Contains(s, "uplink + queue + run") {
		t.Errorf("crit table missing the causal segment chain:\n%s", s)
	}
	ws := WhereTable(cs, 0.5).String()
	for _, want := range []string{"remote.compute", "%"} {
		if !strings.Contains(ws, want) {
			t.Errorf("where-table missing %q:\n%s", want, ws)
		}
	}
}
