package obs

import (
	"testing"

	"repro/internal/simtime"
)

func TestRingBufferRetainsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Time: simtime.PS(i), Kind: KMessage, A0: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.A0 != want {
			t.Errorf("event %d has A0=%d, want %d (oldest-first order broken)", i, ev.A0, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestNilTracerAndMetricsAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KPageFault})
	if tr.Enabled() || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer should be fully inert")
	}
	tr.Reset()

	var m *Metrics
	c := m.Counter("x")
	c.Add(3)
	c.Set(5)
	if c.Value() != 0 || m.Value("x") != 0 || m.Names() != nil {
		t.Error("nil metrics should be fully inert")
	}
}

// TestDisabledObservabilityZeroAlloc proves the exact operations the
// page-fault hot path performs (one Emit on a disabled tracer, one counter
// Add on a disabled registry) allocate nothing.
func TestDisabledObservabilityZeroAlloc(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	c := m.Counter("session.faults")
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{
			Time: 12345, Dur: 678, Kind: KPageFault, Track: TrackServer,
			Name: "remote", A0: 0x2000_0, A1: 0x2000_0000, A2: 4112,
		})
		c.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledTracerZeroAllocSteadyState: even an enabled tracer is
// allocation-free per event once constructed (the ring is preallocated).
func TestEnabledTracerZeroAllocSteadyState(t *testing.T) {
	tr := NewTracer(64)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Time: 1, Kind: KPageFault, Track: TrackServer, Name: "remote"})
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkPageFaultTraceDisabled is the acceptance benchmark: a disabled
// tracer must add 0 allocs/op (and single-digit ns) to the page-fault hot
// path. Run with -benchmem.
func BenchmarkPageFaultTraceDisabled(b *testing.B) {
	var tr *Tracer
	var m *Metrics
	c := m.Counter("session.faults")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{
			Time: simtime.PS(i), Dur: 678, Kind: KPageFault, Track: TrackServer,
			Name: "remote", A0: int64(i), A1: 0x2000_0000, A2: 4112,
		})
		c.Add(1)
	}
}

// BenchmarkPageFaultTraceEnabled measures the enabled-tracer cost of the
// same operation for comparison.
func BenchmarkPageFaultTraceEnabled(b *testing.B) {
	tr := NewTracer(0)
	m := NewMetrics()
	c := m.Counter("session.faults")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{
			Time: simtime.PS(i), Dur: 678, Kind: KPageFault, Track: TrackServer,
			Name: "remote", A0: int64(i), A1: 0x2000_0000, A2: 4112,
		})
		c.Add(1)
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.second").Add(2)
	m.Counter("a.first").Add(1)
	m.Counter("a.first").Add(4)
	m.Counter("c.third").Set(9)
	if got := m.Value("a.first"); got != 5 {
		t.Errorf("a.first = %d, want 5", got)
	}
	names := m.Names()
	if len(names) != 3 || names[0] != "a.first" || names[1] != "b.second" || names[2] != "c.third" {
		t.Errorf("Names = %v, want sorted [a.first b.second c.third]", names)
	}
	if m.Value("missing") != 0 {
		t.Error("missing metric should read 0")
	}
}
