package obs

import (
	"sort"

	"repro/internal/simtime"
)

// Span assembly: reconstructing each job's causal span tree from the flat
// event stream. Events carrying the same non-zero Job id belong to one
// logical offload request; spans nest by time containment (a page-fault
// service sits inside the offload span that caused it, a queue-wait
// segment inside the job's root span), instants hang off whatever span is
// open around them. The assembler is a pure post-processor over whatever
// the ring retained — it must tolerate wraparound-truncated streams, where
// a job's early events (often the enclosing root) were overwritten, so
// orphaned spans simply become additional roots and the tree is marked
// incomplete instead of anything panicking.

// Span is one node of a job's causal span tree: the event itself plus the
// spans and instants it encloses in time.
type Span struct {
	Event
	Children []*Span
}

// End is the span's end instant (Time itself for instants).
func (s *Span) End() simtime.PS { return s.Time + s.Dur }

// JobTrace is the assembled trace of one job id.
type JobTrace struct {
	Job int64
	// Roots are the top-level spans in time order. A fully retained job
	// has exactly one: its KJob (fleet) or KOffload (session) root span
	// enclosing everything else.
	Roots []*Span
	// Events counts every event attributed to the job, instants included.
	Events int
	// Complete reports that the trace has exactly one root *span* — the
	// job's enclosing interval survived and nothing widthful escaped it.
	// Instant roots outside the span are permitted: a gate verdict fires
	// moments before the offload interval it admits opens. False when the
	// ring's wraparound ate part of the job's life.
	Complete bool
}

// Walk visits every span of the trace depth-first in time order.
func (jt *JobTrace) Walk(fn func(*Span)) {
	var rec func(s *Span)
	rec = func(s *Span) {
		fn(s)
		for _, c := range s.Children {
			rec(c)
		}
	}
	for _, r := range jt.Roots {
		rec(r)
	}
}

// AssembleSpans groups the stream's job-attributed events (Job != 0) into
// per-job causal span trees, returned sorted by job id. It never panics on
// a truncated or wrapped stream: whatever subset of a job's events
// survived assembles into a forest, and Complete records whether one root
// covers it all.
func AssembleSpans(events []Event) []*JobTrace {
	byJob := make(map[int64][]Event)
	var ids []int64
	for _, ev := range events {
		if ev.Job == 0 {
			continue
		}
		if _, ok := byJob[ev.Job]; !ok {
			ids = append(ids, ev.Job)
		}
		byJob[ev.Job] = append(byJob[ev.Job], ev)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	out := make([]*JobTrace, 0, len(ids))
	for _, id := range ids {
		out = append(out, assembleJob(id, byJob[id]))
	}
	return out
}

// assembleJob builds one job's tree by time containment. Events sort by
// start instant with wider spans first at ties, so a container always
// precedes its contents; a stack of open spans then assigns each event to
// the innermost span still enclosing it.
func assembleJob(id int64, evs []Event) *JobTrace {
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].Time != evs[b].Time {
			return evs[a].Time < evs[b].Time
		}
		return evs[a].Dur > evs[b].Dur
	})
	jt := &JobTrace{Job: id, Events: len(evs)}
	var stack []*Span
	var prev Event
	for i, ev := range evs {
		if i > 0 && ev == prev {
			// A job's cheap live summary and its flushed exemplar root are
			// value-identical by construction; collapse the duplicate so the
			// tree keeps a single root.
			jt.Events--
			continue
		}
		prev = ev
		s := &Span{Event: ev}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if s.Time >= top.Time && s.End() <= top.End() {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			jt.Roots = append(jt.Roots, s)
		} else {
			top := stack[len(stack)-1]
			top.Children = append(top.Children, s)
		}
		if s.Dur > 0 {
			stack = append(stack, s)
		}
	}
	spanRoots := 0
	for _, r := range jt.Roots {
		if r.Dur > 0 {
			spanRoots++
		}
	}
	jt.Complete = spanRoots == 1
	return jt
}
