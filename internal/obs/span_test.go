package obs

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/simtime"
)

// jobStream is a fully retained job: verdict instant, KJob root and a
// KJobSeg partition crossing three tracks, exactly what the fleet sampler
// flushes for a retained exemplar.
func jobStream(job int64) []Event {
	ms := simtime.Millisecond
	return []Event{
		{Time: 10 * ms, Kind: KGate, Track: TrackMobile, Name: "offload", Job: job},
		{Time: 10 * ms, Dur: 20 * ms, Kind: KJob, Track: TrackMobile, Name: "offload", Job: job, A0: 3, A1: 1},
		{Time: 10 * ms, Dur: 4 * ms, Kind: KJobSeg, Track: TrackLink, Name: "uplink", Job: job, A1: -1},
		{Time: 14 * ms, Dur: 2 * ms, Kind: KJobSeg, Track: TrackEdge, Name: "queue", Job: job, A1: 1},
		{Time: 16 * ms, Dur: 10 * ms, Kind: KJobSeg, Track: TrackEdge, Name: "run", Job: job, A1: 1},
		{Time: 26 * ms, Dur: 4 * ms, Kind: KJobSeg, Track: TrackLink, Name: "reply", Job: job, A1: -1},
	}
}

func TestAssembleSpansBuildsOneRootedTree(t *testing.T) {
	evs := jobStream(7)
	// The live KJob summary and the flushed exemplar root are
	// value-identical; the assembler must collapse the duplicate.
	evs = append(evs, evs[1])
	traces := AssembleSpans(evs)
	if len(traces) != 1 {
		t.Fatalf("got %d job traces, want 1", len(traces))
	}
	jt := traces[0]
	if jt.Job != 7 || !jt.Complete {
		t.Fatalf("job=%d complete=%v, want job 7 complete", jt.Job, jt.Complete)
	}
	if jt.Events != len(jobStream(7)) {
		t.Errorf("Events = %d, want %d (duplicate root not collapsed)", jt.Events, len(jobStream(7)))
	}
	if len(jt.Roots) != 1 || jt.Roots[0].Kind != KJob {
		t.Fatalf("roots = %d (first kind %v), want single KJob root", len(jt.Roots), jt.Roots[0].Kind)
	}
	root := jt.Roots[0]
	// The 4 segments hang directly off the root; the gate instant nests
	// inside the innermost span open at its timestamp (the uplink).
	if len(root.Children) != 4 {
		t.Fatalf("root has %d children, want the 4 segments", len(root.Children))
	}
	var segSum simtime.PS
	sawGate := false
	jt.Walk(func(s *Span) {
		if s.Kind == KJobSeg {
			segSum += s.Dur
		}
		if s.Kind == KGate {
			sawGate = true
		}
	})
	if !sawGate {
		t.Error("gate verdict instant missing from the tree")
	}
	if segSum != root.Dur {
		t.Errorf("segments sum to %v, root spans %v", segSum, root.Dur)
	}
}

// TestAssembleSpansWrappedRing drops the job's root through real ring
// wraparound: the orphaned segments must assemble into an incomplete
// forest, never a panic.
func TestAssembleSpansWrappedRing(t *testing.T) {
	full := jobStream(3)
	tr := NewTracer(len(full) - 2) // too small: the verdict and the root fall out
	for _, ev := range full {
		tr.Emit(ev)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	traces := AssembleSpans(tr.Events())
	if len(traces) != 1 {
		t.Fatalf("got %d job traces, want 1", len(traces))
	}
	jt := traces[0]
	if jt.Complete {
		t.Error("wrapped trace claims Complete with its root overwritten")
	}
	if len(jt.Roots) != 4 {
		t.Errorf("got %d orphan roots, want the 4 surviving segments", len(jt.Roots))
	}
}

// TestAssembleSpansTruncationNeverPanics is the property half of the
// wraparound coverage: any contiguous window and any random subset of a
// multi-job stream must assemble without panicking, and Complete may only
// be claimed when exactly one span root survived.
func TestAssembleSpansTruncationNeverPanics(t *testing.T) {
	var stream []Event
	for job := int64(1); job <= 4; job++ {
		stream = append(stream, jobStream(job)...)
	}
	check := func(evs []Event) {
		t.Helper()
		for _, jt := range AssembleSpans(evs) {
			spanRoots := 0
			for _, r := range jt.Roots {
				if r.Dur > 0 {
					spanRoots++
				}
			}
			if jt.Complete != (spanRoots == 1) {
				t.Fatalf("job %d: Complete=%v with %d span roots", jt.Job, jt.Complete, spanRoots)
			}
		}
	}
	for lo := 0; lo <= len(stream); lo++ {
		for hi := lo; hi <= len(stream); hi++ {
			check(stream[lo:hi])
		}
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var subset []Event
		for _, ev := range stream {
			if rng.Intn(2) == 0 {
				subset = append(subset, ev)
			}
		}
		check(subset)
	}
}

// TestChromeFlowEvents: the exporter must chain a multi-track job's spans
// with s/t/f flow records bound to the enclosing slices, and emit no
// arrows for single-track or single-span jobs.
func TestChromeFlowEvents(t *testing.T) {
	evs := jobStream(5)
	// A second job entirely on one track: no flow chain.
	evs = append(evs,
		Event{Time: 50, Dur: 10, Kind: KJob, Track: TrackMobile, Name: "decline", Job: 6},
		Event{Time: 50, Dur: 10, Kind: KJobSeg, Track: TrackMobile, Name: "local.exec", Job: 6},
	)
	// A third with a single span: nothing to link either.
	evs = append(evs, Event{Time: 70, Dur: 5, Kind: KJob, Track: TrackMobile, Name: "offload", Job: 8})
	// Task brackets never join flows even when job-attributed.
	evs = append(evs, Event{Time: 71, Kind: KTaskEnter, Track: TrackServer, Job: 8})

	flows := flowEvents(evs)
	if len(flows) != 5 {
		t.Fatalf("got %d flow records, want 5 (job 5's spans only)", len(flows))
	}
	for i, f := range flows {
		if f.ID != 5 || f.Cat != "flow" {
			t.Errorf("flow %d: id=%d cat=%q, want job 5's chain", i, f.ID, f.Cat)
		}
		want := "t"
		switch i {
		case 0:
			want = "s"
		case len(flows) - 1:
			want = "f"
		}
		if f.Ph != want {
			t.Errorf("flow %d: ph=%q, want %q", i, f.Ph, want)
		}
		if (f.Ph == "f") != (f.BP == "e") {
			t.Errorf("flow %d: bp=%q on ph=%q (only the finish binds enclosing)", i, f.BP, f.Ph)
		}
	}
	// The chain must actually change tracks at least once.
	tracks := map[int]bool{}
	for _, f := range flows {
		tracks[f.Tid] = true
	}
	if len(tracks) < 2 {
		t.Error("flow chain never leaves its first track")
	}
}

func TestSetKindsFilters(t *testing.T) {
	tr := NewTracer(8)
	tr.SetKinds(KGate, KJob)
	tr.Emit(Event{Kind: KGate})
	tr.Emit(Event{Kind: KPageFault})
	tr.Emit(Event{Kind: KJob})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d after filtered emits, want 2", tr.Len())
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d; filtered events must not count as drops", tr.Dropped())
	}
	tr.SetKinds() // re-admit everything
	tr.Emit(Event{Kind: KPageFault})
	if tr.Len() != 3 {
		t.Errorf("Len = %d after re-admitting, want 3", tr.Len())
	}
	var nilTr *Tracer
	nilTr.SetKinds(KGate) // must not panic
}

// TestSetKindsFilteredPathZeroAlloc: muting a kind must keep the emitter
// allocation-free — the whole point of masking over ripping the tracer out.
func TestSetKindsFilteredPathZeroAlloc(t *testing.T) {
	tr := NewTracer(8)
	tr.SetKinds(KGate)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Time: 1, Kind: KPageFault, Track: TrackServer, Name: "remote"})
	})
	if allocs != 0 {
		t.Fatalf("filtered Emit allocates %.1f allocs/op, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Fatalf("filtered events reached the ring (%d retained)", tr.Len())
	}
}

// TestDroppedSurfaced: a truncated ring must announce itself — in the
// metrics summary under DroppedCounter and in the operator warning line —
// while a complete trace stays silent on both channels.
func TestDroppedSurfaced(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: simtime.PS(i), Kind: KMessage})
	}
	m := NewMetrics()
	tr.PublishDropped(m)
	if got := m.Value(DroppedCounter); got != 3 {
		t.Fatalf("%s = %d, want 3", DroppedCounter, got)
	}
	if s := m.Summary(); !strings.Contains(s, DroppedCounter) {
		t.Errorf("metrics summary hides the drop counter:\n%s", s)
	}
	if w := tr.DropWarning(); !strings.Contains(w, "3") {
		t.Errorf("DropWarning = %q, want the drop count in it", w)
	}

	whole := NewTracer(8)
	whole.Emit(Event{Kind: KMessage})
	m2 := NewMetrics()
	whole.PublishDropped(m2)
	for _, n := range m2.Names() {
		if n == DroppedCounter {
			t.Error("complete trace published a drop counter")
		}
	}
	if w := whole.DropWarning(); w != "" {
		t.Errorf("complete trace warns %q", w)
	}
}

// TestKindMetaExhaustive is the taxonomy lint: every Kind must carry a
// kindMeta entry, and names must be unique so exporters, metrics keys and
// grep all agree on what an event is called.
func TestKindMetaExhaustive(t *testing.T) {
	seen := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		name := kindMeta[k].name
		if name == "" {
			t.Errorf("Kind %d has no kindMeta entry", k)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kindMeta name %q reused by kinds %d and %d", name, prev, k)
		}
		seen[name] = k
	}
}
