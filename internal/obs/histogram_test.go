package obs

import (
	"math"
	"testing"
)

// TestBucketIndexMonotone walks value magnitudes and asserts the bucket
// mapping never decreases and every value lands at or below its bucket's
// inclusive upper bound.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range bucketProbe() {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		if ub := bucketUpper(i); v > ub {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, ub)
		}
		prev = i
	}
}

// bucketProbe yields a dense-then-exponential sweep of values including
// every power-of-two boundary up to MaxInt64.
func bucketProbe() []int64 {
	var vs []int64
	for v := int64(0); v < 1024; v++ {
		vs = append(vs, v)
	}
	for shift := uint(10); shift < 63; shift++ {
		base := int64(1) << shift
		vs = append(vs, base-1, base, base+1, base+base/2)
	}
	vs = append(vs, math.MaxInt64-1, math.MaxInt64)
	return vs
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..100 exercise both exact low buckets and log buckets.
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("snapshot count/sum/max = %d/%d/%d, want 100/5050/100", s.Count, s.Sum, s.Max)
	}
	// Log bucketing bounds relative quantile error by 1/histSub.
	check := func(name string, got, want int64) {
		t.Helper()
		if got < want || float64(got) > float64(want)*(1+1.0/histSub)+1 {
			t.Errorf("%s = %d, want within [%d, %.0f]", name, got, want, float64(want)*(1+1.0/histSub)+1)
		}
	}
	check("p50", s.P50, 50)
	check("p90", s.P90, 90)
	check("p99", s.P99, 99)
	if s.Mean() != 50 {
		t.Errorf("mean = %d, want 50", s.Mean())
	}

	// Determinism: a second identical histogram snapshots identically.
	h2 := NewHistogram()
	for v := int64(1); v <= 100; v++ {
		h2.Record(v)
	}
	if h2.Snapshot() != s {
		t.Errorf("identical recordings produced different snapshots: %+v vs %+v", h2.Snapshot(), s)
	}
}

func TestHistogramNilAndEdge(t *testing.T) {
	var h *Histogram
	h.Record(42) // must not panic
	if h.Count() != 0 {
		t.Errorf("nil histogram Count = %d", h.Count())
	}
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Errorf("nil histogram Snapshot = %+v, want zero", s)
	}

	var m *Metrics
	if m.Histogram("x") != nil {
		t.Error("nil Metrics.Histogram != nil")
	}
	if m.HistogramNames() != nil {
		t.Error("nil Metrics.HistogramNames != nil")
	}
	if m.HistogramSummary() != "" {
		t.Error("nil Metrics.HistogramSummary not empty")
	}

	e := NewHistogram()
	e.Record(-5) // clamps to 0
	if s := e.Snapshot(); s.Count != 1 || s.Max != 0 || s.P99 != 0 {
		t.Errorf("negative record snapshot = %+v, want count=1 max=0", s)
	}

	big := NewHistogram()
	big.Record(math.MaxInt64)
	if s := big.Snapshot(); s.Max != math.MaxInt64 || s.P50 != math.MaxInt64 {
		t.Errorf("MaxInt64 snapshot = %+v", s)
	}
}

// TestHistogramZeroAlloc pins the hot path: Record never allocates, on a
// nil or an enabled histogram.
func TestHistogramZeroAlloc(t *testing.T) {
	var nilH *Histogram
	if n := testing.AllocsPerRun(200, func() { nilH.Record(123) }); n != 0 {
		t.Errorf("nil Histogram.Record allocates %.1f/op", n)
	}
	h := NewHistogram()
	v := int64(0)
	if n := testing.AllocsPerRun(200, func() { v += 7919; h.Record(v) }); n != 0 {
		t.Errorf("Histogram.Record allocates %.1f/op", n)
	}
}

// TestMetricsHistogramRegistry covers creation-on-first-use and the shared
// instance contract.
func TestMetricsHistogramRegistry(t *testing.T) {
	m := NewMetrics()
	a := m.Histogram("lat.a_ps")
	if a == nil {
		t.Fatal("Histogram returned nil on a live registry")
	}
	if m.Histogram("lat.a_ps") != a {
		t.Error("second Histogram call returned a different instance")
	}
	a.Record(10)
	if got := m.HistogramSnapshot("lat.a_ps").Count; got != 1 {
		t.Errorf("snapshot count = %d, want 1", got)
	}
	if got := m.HistogramSnapshot("absent"); got != (HistSnapshot{}) {
		t.Errorf("absent snapshot = %+v, want zero", got)
	}
	m.Histogram("lat.b_ps")
	names := m.HistogramNames()
	if len(names) != 2 || names[0] != "lat.a_ps" || names[1] != "lat.b_ps" {
		t.Errorf("HistogramNames = %v", names)
	}
}

// TestEventsWraparound is the Events() two-copy regression test: fill past
// capacity, then assert order, Dropped and Reset behaviour.
func TestEventsWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{A0: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.A0 != want {
			t.Errorf("Events[%d].A0 = %d, want %d (oldest-first after wrap)", i, ev.A0, want)
		}
	}
	if d := tr.Dropped(); d != 2 {
		t.Errorf("Dropped = %d, want 2", d)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || len(tr.Events()) != 0 {
		t.Errorf("after Reset: len=%d dropped=%d events=%d, want all zero",
			tr.Len(), tr.Dropped(), len(tr.Events()))
	}
	// The ring keeps working after Reset.
	tr.Emit(Event{A0: 9})
	if evs := tr.Events(); len(evs) != 1 || evs[0].A0 != 9 {
		t.Errorf("post-Reset Events = %v", evs)
	}
}

// TestHistogramMergeExact: merging shards must be indistinguishable from
// one histogram that recorded everything — the property the fleet's
// sharded engine relies on to stream statistics without a global lock.
func TestHistogramMergeExact(t *testing.T) {
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	v := int64(1)
	for i := 0; i < 5000; i++ {
		v = (v*6364136223846793005 + 1442695040888963407) & math.MaxInt64
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if got, want := merged.Snapshot(), whole.Snapshot(); got != want {
		t.Errorf("merged snapshot %+v != whole-run snapshot %+v", got, want)
	}

	// Nil on either side is a no-op, never a panic.
	var nilH *Histogram
	nilH.Merge(merged)
	before := merged.Snapshot()
	merged.Merge(nil)
	merged.Merge(NewHistogram())
	if merged.Snapshot() != before {
		t.Error("merging nil/empty changed the snapshot")
	}
}
