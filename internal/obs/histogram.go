package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a log-bucketed latency histogram in the spirit of HDR
// histograms: values 0..15 land in exact buckets, larger values share an
// exponent with histSub sub-buckets, so relative quantile error is bounded
// by 1/histSub (~12.5%) at every magnitude while the whole structure stays
// a fixed array of atomics.
//
// Like the rest of the obs layer it is nil-safe and allocation-free on the
// hot path: Record on a nil *Histogram is a no-op, and an enabled Record
// touches only preallocated atomic counters, so latency-shaped
// instrumentation sites (page-fault service above all) cost nothing when
// metrics are disabled and almost nothing when enabled.
//
// Snapshots are deterministic: quantiles resolve by nearest rank to the
// bucket's inclusive upper bound (clamped to the observed maximum), so two
// identical simulated runs snapshot to identical numbers.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

const (
	// histSubBits fixes the sub-bucket resolution: 2^histSubBits linear
	// sub-buckets per power of two.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the whole non-negative int64 range: 2*histSub
	// exact low buckets plus histSub per remaining exponent.
	histBuckets = (62-histSubBits+1)*histSub + 2*histSub
)

// NewHistogram creates an empty histogram (all counters zero).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket. Values below
// 2*histSub get exact buckets; above that, the high histSubBits bits after
// the leading one select a sub-bucket within the value's exponent. The
// mapping is monotone, so cumulative bucket walks resolve quantiles.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - histSubBits
	return int(exp+1)<<histSubBits + int((u>>uint(exp))&(histSub-1))
}

// bucketUpper is the inclusive upper bound of bucket i (the value a
// quantile landing in the bucket reports).
func bucketUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	exp := uint(i>>histSubBits) - 1
	sub := int64(i & (histSub - 1))
	return (histSub+sub+1)<<exp - 1
}

// Record adds one observation. Negative values clamp to zero (latencies
// are non-negative by construction; clamping keeps a buggy caller from
// corrupting the bucket index). Safe on nil and for concurrent use; never
// allocates.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Merge folds every observation recorded in o into h. The merge is exact:
// bucket counts, count and sum add, max takes the larger, so a histogram
// assembled by merging per-shard histograms snapshots identically to one
// that recorded the same observations through a single instance. This is
// what lets the sharded fleet engine stream stats through shard-local
// histograms and still produce the sequential engine's numbers. Safe on
// nil (either side) and for concurrent use.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	if c := o.count.Load(); c != 0 {
		h.count.Add(c)
	}
	if s := o.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
	om := o.max.Load()
	for {
		old := h.max.Load()
		if om <= old || h.max.CompareAndSwap(old, om) {
			break
		}
	}
	for i := range o.buckets {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
}

// Count returns the number of recorded observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is one deterministic point-in-time view of a histogram.
// Quantiles are nearest-rank bucket upper bounds clamped to Max.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Snapshot captures the histogram's current state. Safe on nil (returns
// the zero snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count == 0 {
		return s
	}
	s.P50 = h.quantile(0.50, s.Count, s.Max)
	s.P90 = h.quantile(0.90, s.Count, s.Max)
	s.P99 = h.quantile(0.99, s.Count, s.Max)
	return s
}

// quantile resolves the q-quantile by nearest rank over the bucket
// cumulative counts.
func (h *Histogram) quantile(q float64, count, max int64) int64 {
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			ub := bucketUpper(i)
			if ub > max {
				ub = max
			}
			return ub
		}
	}
	return max
}

// ---- Metrics registry integration ----

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil histogram (whose methods are no-ops), so record
// sites never branch on enablement. By convention names carry their unit
// as a suffix (e.g. lat.page_fault_ps).
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hists == nil {
		m.hists = make(map[string]*Histogram)
	}
	h, ok := m.hists[name]
	if !ok {
		h = NewHistogram()
		m.hists[name] = h
	}
	return h
}

// HistogramNames returns the registered histogram names, sorted.
func (m *Metrics) HistogramNames() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.hists))
	for n := range m.hists {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names
}

// HistogramSnapshot snapshots the named histogram (zero snapshot if absent
// or the registry is nil).
func (m *Metrics) HistogramSnapshot(name string) HistSnapshot {
	if m == nil {
		return HistSnapshot{}
	}
	m.mu.Lock()
	h := m.hists[name]
	m.mu.Unlock()
	return h.Snapshot()
}

// HistogramSummary renders a deterministic table of every registered
// histogram with aligned quantile columns; empty string when none exist.
func (m *Metrics) HistogramSummary() string {
	names := m.HistogramNames()
	if len(names) == 0 {
		return ""
	}
	header := []string{"histogram", "count", "p50", "p90", "p99", "max", "mean"}
	rows := [][]string{header}
	for _, n := range names {
		s := m.HistogramSnapshot(n)
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%d", s.P50),
			fmt.Sprintf("%d", s.P90),
			fmt.Sprintf("%d", s.P99),
			fmt.Sprintf("%d", s.Max),
			fmt.Sprintf("%d", s.Mean()),
		})
	}
	widths := make([]int, len(header))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-*s", widths[0], r[0])
		for i := 1; i < len(r); i++ {
			fmt.Fprintf(&sb, "  %*s", widths[i], r[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
