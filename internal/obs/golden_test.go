package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/goldentest"
	"repro/internal/simtime"
)

// goldenTracer builds a deterministic miniature of a real offload session:
// gate decision, offload span, prefetch, task execution with a page fault,
// remote I/O, write-back, radio states and a link phase change.
func goldenTracer() *Tracer {
	ms := simtime.Millisecond
	tr := NewTracer(64)
	tr.Emit(Event{Time: 0, Kind: KLinkPhase, Track: TrackLink, A0: 650_000_000, A1: 0})
	tr.Emit(Event{Time: 1 * ms, Kind: KGate, Track: TrackMobile, Name: "offload",
		A0: int64(150 * ms), A1: 1 << 20, A2: 650_000_000, A3: 5360})
	tr.Emit(Event{Time: 1 * ms, Dur: 40 * ms, Kind: KOffload, Track: TrackMobile, Name: "crunch", A0: 1})
	tr.Emit(Event{Time: 1 * ms, Kind: KPrefetch, Track: TrackMobile, A0: 16, A1: 16 * 4096})
	tr.Emit(Event{Time: 1*ms + 500*simtime.Microsecond, Dur: 3 * ms, Kind: KMessage,
		Track: TrackLink, Name: "to_server", A0: 66000})
	tr.Emit(Event{Time: 5 * ms, Kind: KTaskEnter, Track: TrackServer, A0: 1})
	tr.Emit(Event{Time: 9 * ms, Dur: 2 * ms, Kind: KPageFault, Track: TrackServer,
		Name: "remote", A0: 0x7FFFe, A1: 0x7FFF_E000, A2: 4112})
	tr.Emit(Event{Time: 14 * ms, Dur: 1 * ms, Kind: KRemoteIO, Track: TrackServer,
		Name: "printf", A0: 24})
	tr.Emit(Event{Time: 36 * ms, Dur: 4 * ms, Kind: KWriteBack, Track: TrackServer,
		A0: 12, A1: 49152, A2: 9300})
	tr.Emit(Event{Time: 40 * ms, Kind: KTaskExit, Track: TrackServer})
	// Failure-recovery kinds: an injected fault, the retry it forces, the
	// abort after an exhausted budget, and the mobile's local fallback
	// behind a quarantined gate.
	tr.Emit(Event{Time: 41 * ms, Kind: KFault, Track: TrackLink, Name: "drop", A0: 66000, A1: 0})
	tr.Emit(Event{Time: 43 * ms, Kind: KRetry, Track: TrackLink, Name: "page.request",
		A0: 1, A1: int64(2 * ms)})
	tr.Emit(Event{Time: 50 * ms, Kind: KAbort, Track: TrackServer, Name: "page.request", A0: 1})
	tr.Emit(Event{Time: 52 * ms, Kind: KQuarantine, Track: TrackMobile, A0: 1, A1: int64(2 * simtime.Second)})
	tr.Emit(Event{Time: 52 * ms, Dur: 90 * ms, Kind: KFallback, Track: TrackMobile, Name: "crunch", A0: 1})
	// Fleet-scheduler kinds: a dispatch routed by the est-aware policy, the
	// queued request starting after its wait, and an admission shed.
	tr.Emit(Event{Time: 60 * ms, Kind: KDispatch, Track: TrackFleet, Name: "est-aware",
		A0: 7, A1: 2, A2: 3, A3: int64(12 * ms)})
	tr.Emit(Event{Time: 72 * ms, Kind: KQueue, Track: TrackFleet, A0: 7, A1: 2, A2: int64(12 * ms)})
	tr.Emit(Event{Time: 75 * ms, Kind: KShed, Track: TrackFleet, A0: 9, A1: 2, A2: 8})
	// Per-job span kinds: a retained exemplar's KJob root, the KJobSeg
	// critical-path partition of it (crossing the link and edge tracks, so
	// the exporter links them with a flow chain), and a cross-tier promotion
	// carrying its causal parent job.
	tr.Emit(Event{Time: 80 * ms, Dur: 20 * ms, Kind: KJob, Track: TrackMobile, Name: "offload",
		Job: 42, A0: 7, A1: 2, A2: int64(60 * ms), A3: 1 << 20})
	tr.Emit(Event{Time: 80 * ms, Dur: 4 * ms, Kind: KJobSeg, Track: TrackLink, Name: "uplink",
		Job: 42, A0: 7, A1: -1})
	tr.Emit(Event{Time: 84 * ms, Dur: 2 * ms, Kind: KJobSeg, Track: TrackEdge, Name: "queue",
		Job: 42, A0: 7, A1: 2})
	tr.Emit(Event{Time: 85 * ms, Kind: KTierMigrate, Track: TrackFleet, Name: "promote",
		A0: 7, A1: 5, A2: 2, A3: int64(3 * ms), Job: 42, Parent: 17})
	tr.Emit(Event{Time: 86 * ms, Dur: 10 * ms, Kind: KJobSeg, Track: TrackEdge, Name: "run",
		Job: 42, A0: 7, A1: 2})
	tr.Emit(Event{Time: 96 * ms, Dur: 4 * ms, Kind: KJobSeg, Track: TrackLink, Name: "reply",
		Job: 42, A0: 7, A1: -1})
	tr.Emit(Event{Time: 0, Dur: 1 * ms, Kind: KRadio, Track: TrackRadio, Name: "compute"})
	tr.Emit(Event{Time: 1 * ms, Dur: 3 * ms, Kind: KRadio, Track: TrackRadio, Name: "tx"})
	tr.Emit(Event{Time: 4 * ms, Dur: 36 * ms, Kind: KRadio, Track: TrackRadio, Name: "wait"})
	return tr
}

func TestChromeExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	// Structural validity first: the exporter must emit well-formed JSON
	// with the trace_event envelope chrome://tracing expects.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	// 27 events + 1 process metadata + 7 tracks * 2 metadata records +
	// 5 latency counter samples (offload, page_fault, remote_io,
	// write_back, queue) + 5 flow records for job 42's span chain
	// (KJob root + 4 KJobSeg spans across mobile/link/edge).
	if want := 27 + 1 + 14 + 5 + 5; len(parsed.TraceEvents) != want {
		t.Errorf("traceEvents count = %d, want %d", len(parsed.TraceEvents), want)
	}
	goldentest.Check(t, "chrome_golden.json", buf.Bytes())
}

func TestMetricsSummaryGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("link.bytes_to_mobile").Set(9300)
	m.Counter("link.bytes_to_server").Set(70128)
	m.Counter("link.msgs_to_mobile").Set(3)
	m.Counter("link.msgs_to_server").Set(2)
	m.Counter("faults.injected").Set(2)
	m.Counter("session.aborts").Set(1)
	m.Counter("session.declines").Set(0)
	m.Counter("session.dirty_pages").Set(12)
	m.Counter("session.fallbacks").Set(1)
	m.Counter("session.faults").Set(1)
	m.Counter("session.offloads").Set(1)
	m.Counter("session.prefetch_pages").Set(16)
	m.Counter("session.retries").Set(3)
	// Histograms render below the counters with aligned quantile columns.
	h := m.Histogram("lat.page_fault_ps")
	for _, v := range []int64{2_000_000, 2_100_000, 2_400_000, 9_000_000} {
		h.Record(v)
	}
	e2e := m.Histogram("lat.offload.e2e_ps")
	e2e.Record(40_000_000)
	goldentest.Check(t, "metrics_golden.txt", []byte(m.Summary()))
}
