package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event exporter. The output loads directly into
// chrome://tracing or https://ui.perfetto.dev: one process ("offload
// session") with one thread per Track, spans for events with a duration,
// instants for the rest, and B/E pairs for task enter/exit.
//
// Timestamps are microseconds of *simulated* time, so the rendered
// timeline is the paper's timeline, not wall clock.

// chromeEvent is one trace_event record. Field order is fixed by the
// struct, and args maps marshal with sorted keys, so the exporter's output
// is deterministic (the golden tests rely on it).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

// counterName maps each latency-shaped kind to the Perfetto counter track
// its duration is plotted on (ph "C" samples, microseconds). Kinds without
// an entry export no counter.
var counterName = [numKinds]string{
	KPageFault: "lat.page_fault",
	KWriteBack: "lat.write_back",
	KRemoteIO:  "lat.remote_io",
	KOffload:   "lat.offload",
	KQueue:     "lat.queue_wait",
}

// counterValue extracts the latency a counter sample plots: the span
// duration, except for KQueue instants, which carry their wait in A2.
func counterValue(ev Event) float64 {
	if ev.Kind == KQueue {
		return usec(ev.A2)
	}
	return usec(int64(ev.Dur))
}

// usec converts simulated picoseconds to trace microseconds.
func usec(ps int64) float64 { return float64(ps) / 1e6 }

// chromeName picks the display name for an event.
func chromeName(ev Event) string {
	switch ev.Kind {
	case KRadio:
		if ev.Name != "" {
			return ev.Name // the power state is the interesting label
		}
	case KRemoteIO:
		if ev.Name != "" {
			return "io:" + ev.Name
		}
	case KTaskEnter:
		return fmt.Sprintf("task %d", ev.A0)
	case KTaskExit:
		// E records close the matching B by nesting; the name is ignored.
		return "task"
	}
	return kindMeta[ev.Kind].name
}

// chromeArgs collects the kind-specific argument map.
func chromeArgs(ev Event) map[string]any {
	args := make(map[string]any)
	vals := [4]int64{ev.A0, ev.A1, ev.A2, ev.A3}
	for i, label := range kindMeta[ev.Kind].args {
		if label != "" {
			args[label] = vals[i]
		}
	}
	if ev.Name != "" && ev.Kind != KRadio && ev.Kind != KRemoteIO {
		args["detail"] = ev.Name
	}
	if ev.Job != 0 {
		args["job_id"] = ev.Job
	}
	if ev.Parent != 0 {
		args["parent_job_id"] = ev.Parent
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteChrome exports the retained events as Chrome trace_event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms"}

	// Metadata: process and per-track thread names, ordered as declared.
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "offload session"},
	})
	for tr := Track(0); tr < numTracks; tr++ {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M",
				Pid: chromePid, Tid: int(tr) + 1,
				Args: map[string]any{"name": tr.String()},
			},
			chromeEvent{
				Name: "thread_sort_index", Cat: "__metadata", Ph: "M",
				Pid: chromePid, Tid: int(tr) + 1,
				Args: map[string]any{"sort_index": int(tr)},
			})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: chromeName(ev),
			Cat:  "offload",
			Ts:   usec(int64(ev.Time)),
			Pid:  chromePid,
			Tid:  int(ev.Track) + 1,
			Args: chromeArgs(ev),
		}
		switch {
		case ev.Kind == KTaskEnter:
			ce.Ph = "B"
		case ev.Kind == KTaskExit:
			ce.Ph = "E"
		case ev.Dur > 0:
			ce.Ph = "X"
			ce.Dur = usec(int64(ev.Dur))
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
		if cn := counterName[ev.Kind]; cn != "" {
			// Shadow the span with a counter sample so Perfetto plots the
			// latency series (p99 spikes are visible at a glance) next to
			// the timeline.
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: cn, Cat: "offload", Ph: "C",
				Ts: usec(int64(ev.Time)), Pid: chromePid, Tid: int(ev.Track) + 1,
				Args: map[string]any{"us": counterValue(ev)},
			})
		}
	}

	out.TraceEvents = append(out.TraceEvents, flowEvents(events)...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// flowEvents links each job's spans across tracks with Chrome flow
// records (ph "s"/"t"/"f", one chain per job id): the arrows Perfetto
// draws from a job's client-side root through its edge/cloud segments.
// Flows bind to complete (X) spans, so only span events participate; a
// job entirely on one track needs no arrow. Jobs are emitted in id order
// and spans in stream order, keeping the export deterministic.
func flowEvents(events []Event) []chromeEvent {
	spans := make(map[int64][]Event)
	var ids []int64
	for _, ev := range events {
		if ev.Job == 0 || ev.Dur <= 0 || ev.Kind == KTaskEnter || ev.Kind == KTaskExit {
			continue
		}
		if _, ok := spans[ev.Job]; !ok {
			ids = append(ids, ev.Job)
		}
		spans[ev.Job] = append(spans[ev.Job], ev)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	var out []chromeEvent
	for _, id := range ids {
		chain := spans[id]
		tracks := make(map[Track]bool)
		for _, ev := range chain {
			tracks[ev.Track] = true
		}
		if len(chain) < 2 || len(tracks) < 2 {
			continue
		}
		for i, ev := range chain {
			ph := "t"
			switch i {
			case 0:
				ph = "s"
			case len(chain) - 1:
				ph = "f"
			}
			ce := chromeEvent{
				Name: "job", Cat: "flow", Ph: ph, ID: id,
				Ts:  usec(int64(ev.Time)),
				Pid: chromePid, Tid: int(ev.Track) + 1,
			}
			if ph == "f" {
				ce.BP = "e" // bind to the enclosing slice, not the next one
			}
			out = append(out, ce)
		}
	}
	return out
}
