package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named monotonic counters/gauges and latency
// histograms. The offload runtime publishes its per-session and per-link
// statistics here, so the experiment harness and the CLIs consume one
// uniform surface instead of reaching into each subsystem's counter struct.
//
// Like the Tracer, a nil *Metrics (and a nil *Counter or *Histogram) is a
// valid disabled registry: every operation is a no-op and Counter/Histogram
// return nil, so instrumented code never branches on enablement.
type Metrics struct {
	mu    sync.Mutex
	vals  map[string]*Counter
	hists map[string]*Histogram
}

// Counter is one named int64 metric. Add/Set are safe for concurrent use
// and never allocate.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on nil.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Set overwrites the counter. Safe on nil.
func (c *Counter) Set(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value reads the counter; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{vals: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter (whose methods are no-ops).
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.vals[name]
	if !ok {
		c = &Counter{}
		m.vals[name] = c
	}
	return c
}

// Value reads the named counter; 0 if absent or the registry is nil.
func (m *Metrics) Value(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	c := m.vals[name]
	m.mu.Unlock()
	return c.Value()
}

// Names returns the registered metric names, sorted.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.vals))
	for n := range m.vals {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names
}

// Summary renders a deterministic name-aligned listing of every metric,
// followed by the histogram table (aligned quantile columns) when any
// histograms are registered.
func (m *Metrics) Summary() string {
	names := m.Names()
	hist := m.HistogramSummary()
	if len(names) == 0 && hist == "" {
		return "(no metrics)\n"
	}
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%-*s  %d\n", width, n, m.Value(n))
	}
	if hist != "" {
		if len(names) > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(hist)
	}
	return sb.String()
}
