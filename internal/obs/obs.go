// Package obs is the offload-session observability layer: a low-overhead
// structured event tracer and a metrics registry threaded through the whole
// pipeline (runtime, network simulator, interpreter, energy model).
//
// The paper's evaluation (Figures 6-8) is entirely about *explaining* where
// time and energy go during an offload — communication vs. computation,
// radio power plateaus, prefetch vs. copy-on-demand. Every session
// lifecycle event (gate decision with its Equation-1 inputs, page fault,
// prefetch batch, dirty-page write-back, remote-I/O round trip, radio
// power-state transition, link phase change) is recorded with its
// simtime.PS timestamp into a bounded ring buffer, and can be exported as
// Chrome trace_event JSON (chrome://tracing, Perfetto) or aggregated into a
// metrics summary.
//
// Tracing is nil-safe and allocation-free: every method on a nil *Tracer,
// *Metrics or *Counter is a no-op, so instrumented hot paths (the
// copy-on-demand page-fault service above all) cost nothing when
// observability is disabled. Events are fixed-size values and the ring is
// preallocated, so even an *enabled* tracer does not allocate per event.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/simtime"
)

// Track identifies the timeline an event belongs to; the Chrome exporter
// renders one thread per track.
type Track uint8

const (
	// TrackMobile is the mobile device's execution timeline.
	TrackMobile Track = iota
	// TrackServer is the server's execution timeline.
	TrackServer
	// TrackLink carries wire messages and bandwidth phase changes.
	TrackLink
	// TrackRadio carries the mobile radio power-state timeline.
	TrackRadio
	// TrackFleet carries the server-fleet scheduler: dispatch decisions,
	// queue waits and admission sheds.
	TrackFleet
	// TrackEdge and TrackCloud carry per-tier execution segments of the
	// tiered fleet (queue waits and service intervals of retained exemplar
	// jobs), so a job's flow renders across client -> edge -> cloud.
	TrackEdge
	TrackCloud
	numTracks
)

func (t Track) String() string {
	return [...]string{"mobile", "server", "link", "radio", "fleet", "edge", "cloud"}[t]
}

// Kind is the event taxonomy. Each kind documents the meaning of the
// generic argument slots A0..A3 (see kindMeta for the exported names).
type Kind uint8

const (
	// KGate is one dynamic-estimation decision (Equation 1). Name is
	// "offload" or "decline"; A0=Tm (ps), A1=M (bytes), A2=BW (bps),
	// A3=R*1000.
	KGate Kind = iota
	// KOffload spans one whole offload session on the mobile timeline
	// (initialization through finalization). A0=task id.
	KOffload
	// KPrefetch is the initialization-time page batch. A0=pages, A1=bytes.
	KPrefetch
	// KPageFault is one copy-on-demand fault service on the server. Name is
	// "remote" (round trip to the mobile device) or "zero-fill"; A0=page
	// number, A1=page address, A2=wire bytes.
	KPageFault
	// KWriteBack is the finalization dirty-page write-back. A0=dirty pages,
	// A1=raw (pre-compression) bytes, A2=wire bytes.
	KWriteBack
	// KRemoteIO is one remote I/O service operation; Name is the operation
	// ("printf", "open", "read", "close"). A0=payload bytes.
	KRemoteIO
	// KMessage is one wire message; Name is "to_server" or "to_mobile".
	// A0=bytes.
	KMessage
	// KRadio is one maximal radio power-state interval; Name is the energy
	// state ("compute", "wait", "rx", "tx", "ioserve", "idle").
	KRadio
	// KLinkPhase marks a bandwidth regime change of a time-varying link.
	// A0=bandwidth (bps), A1=phase index.
	KLinkPhase
	// KTaskEnter/KTaskExit bracket the offloaded task's execution on the
	// server timeline. A0=task id.
	KTaskEnter
	KTaskExit
	// KFault is one injected link fault. Name is the fault kind ("drop",
	// "corrupt", "delay", "outage"); A0=message bytes, A1=added delay (ps).
	KFault
	// KRetry is one wire retransmission after a deadline expiry or checksum
	// failure. Name is the RPC being retried; A0=attempt number, A1=backoff
	// (ps).
	KRetry
	// KAbort marks the runtime giving up on an offload after exhausting
	// retries. Name is the RPC that failed; A0=task id.
	KAbort
	// KFallback spans the local re-execution of an abandoned offload on the
	// mobile timeline. A0=task id.
	KFallback
	// KQuarantine marks the gate entering its post-abort cool-down.
	// A0=task id, A1=cool-down length (ps).
	KQuarantine
	// KDispatch is one fleet dispatch decision: a client's offload request
	// routed to a server. Name is the load-balancing policy; A0=client,
	// A1=server, A2=queue depth at dispatch, A3=estimated wait (ps).
	KDispatch
	// KQueue is one queued request leaving a server's run queue for a free
	// slot, charging its queueing delay. A0=client, A1=server, A2=wait (ps).
	KQueue
	// KShed is one offload request rejected by admission control and sent
	// down the local-fallback path. A0=client, A1=server, A2=queue depth.
	KShed
	// KServerFault is one injected server fault taking effect. Name is the
	// fault kind ("slow", "stall", "crash", "drain"); A0=server,
	// A1=added/stalled time (ps).
	KServerFault
	// KHealth is one health-monitor deadline overrun observed at a
	// heartbeat boundary. A0=observed gap (ps), A1=allowed gap (ps),
	// A2=consecutive overruns so far.
	KHealth
	// KMigrateCheckpoint marks the in-flight offload's state being
	// snapshotted on the degraded server. A0=task id, A1=pages shipped,
	// A2=payload bytes.
	KMigrateCheckpoint
	// KMigrateShip spans the checkpoint transfer to the new server.
	// A0=task id, A1=wire bytes.
	KMigrateShip
	// KMigrateResume marks execution resuming on the new server instance.
	// Name is the migration reason ("crash", "drain", "health", "forced");
	// A0=task id, A1=source host, A2=target host.
	KMigrateResume
	// KTierPlace is one 3-way placement decision of the tiered fleet.
	// Name is the chosen tier ("local", "edge", "cloud"); A0=client,
	// A1=server picked (-1 for local), A2=estimated completion (ps),
	// A3=charged queue delay (ps).
	KTierPlace
	// KTierMigrate is one cross-tier move of an offload over the WAN.
	// Name is the direction ("promote" cloud->edge, "demote" edge->cloud);
	// A0=client, A1=from server, A2=to server, A3=ship time (ps).
	KTierMigrate
	// KJob spans one whole fleet job from its decision instant to the
	// result in hand — the root of a retained exemplar's span tree, and
	// the cheap per-job summary every completion emits. Name is the
	// outcome ("offload", "decline", "shed", "fallback"); A0=client,
	// A1=final server (-1 local), A2=Tm (ps), A3=M (bytes). Dur is the
	// job's end-to-end latency, the exact quantity Stats records.
	KJob
	// KJobSeg is one causally-ordered critical-path segment of a retained
	// exemplar job: the segments of a job partition its KJob span exactly.
	// Name is the segment ("gate", "uplink", "queue", "run", "reply",
	// "wan.ship", "fault.detect", "resend", "run.lost", "shed.notice",
	// "deadline.wait", "local.exec"); A0=client, A1=server (-1 n/a).
	KJobSeg
	numKinds
)

// kindMeta names each kind and its argument slots for the exporters.
var kindMeta = [numKinds]struct {
	name string
	args [4]string
}{
	KGate:      {"gate", [4]string{"tm_ps", "mem_bytes", "bw_bps", "r_milli"}},
	KOffload:   {"offload", [4]string{"task", "", "", ""}},
	KPrefetch:  {"prefetch", [4]string{"pages", "bytes", "", ""}},
	KPageFault: {"page_fault", [4]string{"page", "addr", "wire_bytes", ""}},
	KWriteBack: {"write_back", [4]string{"dirty_pages", "raw_bytes", "wire_bytes", ""}},
	KRemoteIO:  {"remote_io", [4]string{"bytes", "", "", ""}},
	KMessage:   {"msg", [4]string{"bytes", "", "", ""}},
	KRadio:     {"radio", [4]string{"", "", "", ""}},
	KLinkPhase: {"link_phase", [4]string{"bw_bps", "phase", "", ""}},
	KTaskEnter: {"task", [4]string{"task", "", "", ""}},
	// The exporter names E records "task" itself (Chrome ignores them);
	// the meta name stays unique so the taxonomy lint can hold.
	KTaskExit: {"task.exit", [4]string{"", "", "", ""}},

	KFault:      {"fault.injected", [4]string{"bytes", "delay_ps", "", ""}},
	KRetry:      {"rpc.retry", [4]string{"attempt", "backoff_ps", "", ""}},
	KAbort:      {"offload.abort", [4]string{"task", "", "", ""}},
	KFallback:   {"fallback.local", [4]string{"task", "", "", ""}},
	KQuarantine: {"gate.quarantine", [4]string{"task", "cooldown_ps", "", ""}},

	KDispatch: {"fleet.dispatch", [4]string{"client", "server", "queue_depth", "est_wait_ps"}},
	KQueue:    {"fleet.queue", [4]string{"client", "server", "wait_ps", ""}},
	KShed:     {"fleet.shed", [4]string{"client", "server", "queue_depth", ""}},

	KServerFault:       {"server.fault", [4]string{"server", "added_ps", "", ""}},
	KHealth:            {"health.overrun", [4]string{"gap_ps", "allowed_ps", "strikes", ""}},
	KMigrateCheckpoint: {"migrate.checkpoint", [4]string{"task", "pages", "bytes", ""}},
	KMigrateShip:       {"migrate.ship", [4]string{"task", "wire_bytes", "", ""}},
	KMigrateResume:     {"migrate.resume", [4]string{"task", "from_host", "to_host", ""}},
	KTierPlace:         {"tier.place", [4]string{"client", "server", "est_ps", "wait_ps"}},
	KTierMigrate:       {"tier.migrate", [4]string{"client", "from_server", "to_server", "ship_ps"}},

	KJob:    {"job", [4]string{"client", "server", "tm_ps", "mem_bytes"}},
	KJobSeg: {"job.seg", [4]string{"client", "server", "", ""}},
}

func (k Kind) String() string { return kindMeta[k].name }

// Event is one recorded occurrence. It is a fixed-size value so the ring
// buffer stores it without indirection; Name must be a static (or
// long-lived) string — instrumentation sites pass constants.
type Event struct {
	// Time is the event start on the simulated timeline.
	Time simtime.PS
	// Dur, when positive, makes this a complete span; zero is an instant.
	Dur   simtime.PS
	Kind  Kind
	Track Track
	// Name refines the kind ("offload"/"decline", an I/O op, a radio state).
	Name string
	// A0..A3 are kind-specific arguments (see the Kind constants).
	A0, A1, A2, A3 int64
	// Job attributes the event to one logical offload request: every event
	// of a job's life (gate verdict, dispatch, queue wait, run, retry,
	// migration, completion) carries the same id, which is what lets the
	// span assembler reconstruct the job's causal tree from a flat stream.
	// Zero means unattributed (session-global events: radio states, link
	// phases, health probes).
	Job int64
	// Parent, when non-zero, names the job that causally triggered this
	// event when that is a *different* job — e.g. a cross-tier promotion
	// carries the finishing job whose freed slot pulled this one back.
	// The Chrome exporter renders it as a cross-job flow argument.
	Parent int64
}

// Tracer records events into a bounded ring buffer. When the ring is full
// the oldest events are overwritten and counted as dropped, so a runaway
// workload degrades the trace instead of memory. A nil *Tracer is a valid
// disabled tracer: Emit is a no-op.
type Tracer struct {
	// kinds is the kind-mask filter: bit k admits Kind k. Zero (the
	// initial state) admits everything, so SetKinds is pay-for-use. It is
	// atomic so Emit's hot path checks it before taking the ring lock.
	kinds atomic.Uint64

	mu      sync.Mutex
	buf     []Event
	head    int // next write position
	n       int // events currently stored
	dropped int64
}

// DefaultCapacity is the ring size used when NewTracer is given cap <= 0.
const DefaultCapacity = 1 << 15

// NewTracer creates a tracer whose ring holds capacity events
// (DefaultCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SetKinds restricts the tracer to the given event kinds: Emit discards
// everything else before touching the ring (filtered events are not
// counted as dropped — they were never wanted). Calling SetKinds with no
// arguments re-admits every kind. Safe on nil, safe concurrently with
// Emit, and the filtered path stays allocation-free — the cheap way to
// mute a hot-path emitter without tearing out the tracer.
func (t *Tracer) SetKinds(keep ...Kind) {
	if t == nil {
		return
	}
	var mask uint64
	for _, k := range keep {
		mask |= 1 << k
	}
	t.kinds.Store(mask)
}

// Emit records one event. Safe on a nil tracer; never allocates.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if mask := t.kinds.Load(); mask != 0 && mask&(1<<ev.Kind) == 0 {
		return
	}
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.head] = ev
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	// The ring holds at most two contiguous runs: [start:] and the
	// wrapped-around prefix. Two copies beat a per-element modulo walk.
	n := copy(out, t.buf[start:])
	copy(out[n:], t.buf[:t.n-n])
	return out
}

// DroppedCounter is the metrics name under which PublishDropped surfaces
// the ring's drop count, so every consumer of Metrics.Summary sees a
// truncated trace by the same key.
const DroppedCounter = "trace.dropped_events"

// PublishDropped surfaces the drop counter on a metrics registry (no-op
// when nothing was dropped or m is nil). Safe on a nil tracer.
func (t *Tracer) PublishDropped(m *Metrics) {
	if d := t.Dropped(); d > 0 {
		m.Counter(DroppedCounter).Set(d)
	}
}

// DropWarning returns a one-line operator warning when the ring dropped
// events, and "" when the trace is complete. Callers print it to stderr so
// a silently truncated trace never masquerades as a full one.
func (t *Tracer) DropWarning() string {
	d := t.Dropped()
	if d == 0 {
		return ""
	}
	return fmt.Sprintf("warning: trace ring dropped %d event(s) (oldest overwritten); raise the ring capacity or mute kinds with SetKinds", d)
}

// Reset drops all retained events and the dropped counter.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.head, t.n, t.dropped = 0, 0, 0
	t.mu.Unlock()
}
