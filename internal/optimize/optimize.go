// Package optimize implements the server-specific optimizations of
// Section 3.4:
//
//   - the remote I/O manager replaces well-known I/O call sites in the
//     server binary with remote variants (printf -> r_printf, Figure 3(c)
//     line 61) that execute the original operation back on the mobile
//     device, which is what lets hot regions containing I/O offload at all;
//   - function pointer mapping marks every indirect call site in the server
//     binary for address translation through the runtime's function map
//     (s2mFcnMap, Figure 3(c) line 56), because the two back ends assign
//     different addresses to the same function.
package optimize

import (
	"repro/internal/ir"
)

// Report summarizes what the optimizer changed.
type Report struct {
	// RemoteIOSites counts rewritten I/O call sites.
	RemoteIOSites int
	// RemoteInputSites counts those that are input operations (file
	// reads), which need round-trip communication and dominate the remote
	// I/O overhead of twolf/gobmk/h264ref in Figure 7.
	RemoteInputSites int
	// MappedFptrSites counts indirect call sites marked for translation.
	MappedFptrSites int
}

// RemoteIO rewrites I/O call sites to their remote variants across the
// whole server module (everything the server runs is offloaded code).
func RemoteIO(s *ir.Module) *Report {
	r := &Report{}
	for _, f := range s.Funcs {
		if f.IsExtern() {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				rv, remotable := call.Callee.Extern.RemoteVariant()
				if !remotable {
					continue
				}
				call.Callee = s.Extern(rv)
				r.RemoteIOSites++
				if rv.IsRemoteInput() {
					r.RemoteInputSites++
				}
			}
		}
	}
	return r
}

// MapFunctionPointers marks every indirect call in the server module for
// s2m translation.
func MapFunctionPointers(s *ir.Module) int {
	n := 0
	for _, f := range s.Funcs {
		if f.IsExtern() {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ci, ok := in.(*ir.CallInd); ok && !ci.Mapped {
					ci.Mapped = true
					n++
				}
			}
		}
	}
	return n
}

// Optimize runs both server-specific optimizations.
func Optimize(s *ir.Module) *Report {
	r := RemoteIO(s)
	r.MappedFptrSites = MapFunctionPointers(s)
	return r
}

// CountFptrUses counts function-pointer uses in a module: indirect call
// sites plus address-escape points (Table 4's "Fcn. Ptr" column).
func CountFptrUses(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.(type) {
				case *ir.CallInd, *ir.FuncAddr:
					n++
				}
			}
		}
	}
	for _, g := range m.Globals {
		for _, v := range g.Init {
			if _, ok := v.(*ir.Func); ok {
				n++
			}
		}
	}
	return n
}
