package optimize

import (
	"testing"

	"repro/internal/ir"
)

func buildServerModule() *ir.Module {
	mod := ir.NewModule("srv")
	b := ir.NewBuilder(mod)
	sig := ir.Signature(ir.I32, ir.I32)
	leaf := b.NewFunc("leaf", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.F.Params[0])
	b.NewFunc("task", ir.I32)
	b.CallExtern(ir.ExternPrintf, b.Str("x=%d\n"), ir.Int(1))
	fd := b.CallExtern(ir.ExternFileOpen, b.Str("in.dat"))
	buf := b.CallExtern(ir.ExternUMalloc, ir.Int(64))
	b.CallExtern(ir.ExternFileRead, fd, buf, ir.Int(64))
	b.CallExtern(ir.ExternFileClose, fd)
	fp := b.FuncAddr(leaf)
	b.Ret(b.CallPtr(fp, sig, ir.Int(2)))
	b.Finish()
	return mod
}

func TestRemoteIORewrites(t *testing.T) {
	mod := buildServerModule()
	r := RemoteIO(mod)
	if r.RemoteIOSites != 4 {
		t.Errorf("RemoteIOSites = %d, want 4 (printf, fopen, fread, fclose)", r.RemoteIOSites)
	}
	if r.RemoteInputSites != 3 {
		t.Errorf("RemoteInputSites = %d, want 3 (file stream ops)", r.RemoteInputSites)
	}
	// No local I/O extern calls survive.
	for _, f := range mod.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if c, ok := in.(*ir.Call); ok && c.Callee.Extern.IsLocalIO() {
					t.Errorf("surviving local I/O call %s", c.Callee.Nam)
				}
			}
		}
	}
}

func TestMapFunctionPointersIdempotent(t *testing.T) {
	mod := buildServerModule()
	if n := MapFunctionPointers(mod); n != 1 {
		t.Errorf("mapped %d sites, want 1", n)
	}
	if n := MapFunctionPointers(mod); n != 0 {
		t.Errorf("second pass mapped %d sites, want 0", n)
	}
}

func TestCountFptrUses(t *testing.T) {
	mod := buildServerModule()
	// One CallInd + one FuncAddr.
	if n := CountFptrUses(mod); n != 2 {
		t.Errorf("CountFptrUses = %d, want 2", n)
	}
}

func TestOptimizeCombined(t *testing.T) {
	mod := buildServerModule()
	r := Optimize(mod)
	if r.RemoteIOSites != 4 || r.MappedFptrSites != 1 {
		t.Errorf("combined report = %+v", r)
	}
}
