// Package tiers models the hierarchical offload topology: every mobile
// client reaches a nearby *edge* pool over its access link, and the edge
// reaches a distant *cloud* pool over a wide-area backhaul. The two
// remote tiers trade against each other exactly along the axes of
// Equation 1 — the edge is close (sub-millisecond RTT) but modestly
// provisioned (small compute ratio R, few slots), the cloud is far
// (tens of milliseconds of WAN propagation) but fast and wide — which
// turns the paper's binary offload gate into a 3-way *placement*
// decision (estimate.Placement): local, edge, or cloud, re-evaluated
// per invocation against each tier's live queueing delay.
//
// The package is pure topology description: geometry, capacities and
// link arithmetic. The fleet's machine consumes it for dispatch and
// cross-tier migration; offrt's session gate consumes it for the
// single-client 3-way gate.
package tiers

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Tier identifies one level of the offload hierarchy.
type Tier uint8

const (
	// Edge is the nearby pool: low RTT, small R.
	Edge Tier = iota
	// Cloud is the distant pool: WAN RTT, large R.
	Cloud
)

func (t Tier) String() string {
	if t == Cloud {
		return "cloud"
	}
	return "edge"
}

// Track maps the tier onto its trace-exporter timeline, so every producer
// of tier-attributed spans (the fleet's exemplar segments above all)
// renders a given tier on the same Chrome track.
func (t Tier) Track() obs.Track {
	if t == Cloud {
		return obs.TrackCloud
	}
	return obs.TrackEdge
}

// Pool describes one tier's server pool: homogeneous capacity, since a
// tier is a provisioning class rather than a grab-bag of machines.
type Pool struct {
	// Servers is the pool size. Zero removes the tier from the topology.
	Servers int
	// R is the tier's server/mobile performance ratio (Equation 1's R).
	R float64
	// Slots is the number of concurrent execution slots per server.
	Slots int
}

// Mode selects the placement policy over the topology.
type Mode string

const (
	// ThreeWay is the est-aware 3-way gate: every request is placed on
	// whichever of {local, edge, cloud} minimizes estimated completion.
	ThreeWay Mode = "3way"
	// EdgeOnly statically pins offloads to the edge pool (the 2-way gate
	// against the edge tier; the cloud sits idle).
	EdgeOnly Mode = "edge-only"
	// CloudOnly statically pins offloads to the cloud pool.
	CloudOnly Mode = "cloud-only"
)

// Modes lists every placement mode, in comparison order.
func Modes() []Mode { return []Mode{ThreeWay, EdgeOnly, CloudOnly} }

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("tiers: unknown placement mode %q (want 3way, edge-only or cloud-only)", s)
}

// Topology is the full hierarchical layout.
type Topology struct {
	// Mode is the placement policy (defaults to ThreeWay when empty).
	Mode Mode
	// Edge and Cloud are the two remote pools. Edge servers occupy the
	// low fleet indices [0, Edge.Servers), cloud servers follow.
	Edge  Pool
	Cloud Pool
	// Backhaul is the edge<->cloud WAN link every cloud-bound byte (and
	// every cross-tier migration) crosses in series with the client's
	// access link. Nil defaults to netsim.CloudWAN().
	Backhaul *netsim.Link
}

// Default returns the standard experiment topology: a small nearby edge
// (R=3, 2 slots — half-speed machines racked at the access point) and a
// deeper, faster cloud (R=8, 4 slots) behind the CloudWAN backhaul.
func Default(edgeServers, cloudServers int) *Topology {
	return &Topology{
		Mode:  ThreeWay,
		Edge:  Pool{Servers: edgeServers, R: 3, Slots: 2},
		Cloud: Pool{Servers: cloudServers, R: 8, Slots: 4},
	}
}

// Validate rejects topologies the placement machinery cannot run with.
func (t *Topology) Validate() error {
	if t == nil {
		return nil
	}
	if t.Mode != "" {
		if _, err := ParseMode(string(t.Mode)); err != nil {
			return err
		}
	}
	if t.Edge.Servers < 0 || t.Cloud.Servers < 0 {
		return fmt.Errorf("tiers: negative pool size (edge=%d, cloud=%d)", t.Edge.Servers, t.Cloud.Servers)
	}
	if t.Total() == 0 {
		return fmt.Errorf("tiers: both pools empty")
	}
	for _, tc := range []struct {
		tier Tier
		p    Pool
	}{{Edge, t.Edge}, {Cloud, t.Cloud}} {
		if tc.p.Servers > 0 && (tc.p.R <= 0 || tc.p.Slots <= 0) {
			return fmt.Errorf("tiers: %v pool has non-positive capacity (R=%g, slots=%d)", tc.tier, tc.p.R, tc.p.Slots)
		}
	}
	return nil
}

// EffectiveMode resolves the zero value to ThreeWay.
func (t *Topology) EffectiveMode() Mode {
	if t.Mode == "" {
		return ThreeWay
	}
	return t.Mode
}

// Total is the fleet-wide server count.
func (t *Topology) Total() int { return t.Edge.Servers + t.Cloud.Servers }

// TierOf maps a fleet server index to its tier.
func (t *Topology) TierOf(si int) Tier {
	if si < t.Edge.Servers {
		return Edge
	}
	return Cloud
}

// PoolOf returns the given tier's pool.
func (t *Topology) PoolOf(tier Tier) Pool {
	if tier == Cloud {
		return t.Cloud
	}
	return t.Edge
}

// Indices returns the half-open fleet index range [lo, hi) of a tier.
func (t *Topology) Indices(tier Tier) (lo, hi int) {
	if tier == Edge {
		return 0, t.Edge.Servers
	}
	return t.Edge.Servers, t.Total()
}

// WAN resolves the backhaul link (CloudWAN when unset).
func (t *Topology) WAN() *netsim.Link {
	if t.Backhaul != nil {
		return t.Backhaul
	}
	return netsim.CloudWAN()
}

// CombineBps is the serial-path effective bandwidth of two links
// crossed back to back: wire times add, so the rates combine
// harmonically (1/bw = 1/a + 1/b). Zero is netsim's ideal-link
// convention — a free leg — so it passes the other rate through.
func CombineBps(a, b int64) int64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	return int64(1 / (1/float64(a) + 1/float64(b)))
}

// CloudParams derives the estimator parameters for reaching the cloud
// through an access link priced as access (bandwidth + round-trip fixed
// cost, estimate.Params convention): the serial path's bandwidth is the
// harmonic combination and the fixed costs add, so
// Params.CommTime(mem, 1) equals the sum of per-leg transfer charges
// the event timeline actually pays — the estimate and the simulation
// price the WAN identically by construction.
func (t *Topology) CloudParams(access estimate.Params) estimate.Params {
	wan := t.WAN()
	return estimate.Params{
		R:            t.Cloud.R,
		BandwidthBps: CombineBps(access.BandwidthBps, wan.BandwidthBps),
		RTT:          access.RTT + 2*(wan.Latency+wan.PerMessage),
	}
}

// ShipTime is the one-way WAN cost of moving size bytes between tiers:
// the backhaul leg a cloud-bound dispatch adds on top of the access
// link, and the checkpoint-shipping cost of a cross-tier migration.
func (t *Topology) ShipTime(size int64) simtime.PS {
	return t.WAN().TransferTime(size)
}
