package tiers

import (
	"testing"

	"repro/internal/estimate"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

func TestValidate(t *testing.T) {
	if err := Default(2, 4).Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	var nilTopo *Topology
	if err := nilTopo.Validate(); err != nil {
		t.Fatalf("nil topology should validate (untiered): %v", err)
	}
	bad := []Topology{
		{Edge: Pool{Servers: 0}, Cloud: Pool{Servers: 0}},
		{Edge: Pool{Servers: 2, R: 0, Slots: 2}, Cloud: Pool{Servers: 1, R: 8, Slots: 4}},
		{Edge: Pool{Servers: 2, R: 3, Slots: 0}},
		{Mode: "bogus", Edge: Pool{Servers: 2, R: 3, Slots: 2}},
		{Edge: Pool{Servers: -1}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: bad topology %+v validated", i, bad[i])
		}
	}
}

func TestTierGeometry(t *testing.T) {
	topo := Default(3, 5)
	if got := topo.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
	for si := 0; si < topo.Total(); si++ {
		want := Edge
		if si >= 3 {
			want = Cloud
		}
		if got := topo.TierOf(si); got != want {
			t.Errorf("TierOf(%d) = %v, want %v", si, got, want)
		}
	}
	if lo, hi := topo.Indices(Edge); lo != 0 || hi != 3 {
		t.Errorf("edge indices = [%d, %d), want [0, 3)", lo, hi)
	}
	if lo, hi := topo.Indices(Cloud); lo != 3 || hi != 8 {
		t.Errorf("cloud indices = [%d, %d), want [3, 8)", lo, hi)
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(string(m))
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
	if got := (&Topology{}).EffectiveMode(); got != ThreeWay {
		t.Errorf("zero mode resolves to %v, want %v", got, ThreeWay)
	}
}

func TestCombineBps(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 1_000, 1_000},     // ideal access leg passes the WAN through
		{1_000, 0, 1_000},     // and vice versa
		{1_000, 1_000, 500},   // equal legs halve
		{500, 1_000_000, 499}, // a slow leg dominates
	}
	for _, c := range cases {
		if got := CombineBps(c.a, c.b); got != c.want {
			t.Errorf("CombineBps(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// CloudParams must price the serial path exactly as the event timeline
// does: CommTime over the combined params equals the sum of per-leg
// transfer charges plus both round-trip fixed costs.
func TestCloudParamsMatchesPerLegCharges(t *testing.T) {
	topo := Default(2, 4)
	access, _ := netsim.Profile("edge-wifi")
	accessP := estimate.Params{
		BandwidthBps: access.BandwidthBps,
		RTT:          2 * (access.Latency + access.PerMessage),
	}
	wan := topo.WAN()
	for _, mem := range []int64{64 << 10, 1 << 20, 16 << 20} {
		p := topo.CloudParams(accessP)
		if p.R != topo.Cloud.R {
			t.Fatalf("CloudParams R = %g, want %g", p.R, topo.Cloud.R)
		}
		got := p.CommTime(mem, 1)
		// The per-leg charge of the event timeline: access up+down plus
		// WAN up+down, each TransferTime including one latency+permsg.
		want := 2*access.TransferTime(mem) + 2*wan.TransferTime(mem)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// Harmonic-combination float rounding: allow 1ns on multi-ms sums.
		if diff > simtime.PS(1000) {
			t.Errorf("mem=%d: combined CommTime %v != per-leg charges %v (diff %v)", mem, got, want, diff)
		}
	}
}

func TestShipTime(t *testing.T) {
	topo := Default(1, 1)
	if got, want := topo.ShipTime(1<<20), topo.WAN().TransferTime(1<<20); got != want {
		t.Errorf("ShipTime = %v, want %v", got, want)
	}
	// An explicit backhaul overrides the default.
	topo.Backhaul = netsim.Backhaul()
	if got, want := topo.ShipTime(1<<20), netsim.Backhaul().TransferTime(1<<20); got != want {
		t.Errorf("ShipTime over explicit backhaul = %v, want %v", got, want)
	}
}
