// Package report renders the experiment harness's tables and bar series as
// aligned text, the form in which offloadbench and the benchmarks print the
// reproduced tables and figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are rendered with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Bar renders a horizontal bar of width proportional to v/max (for the
// normalized-time and battery figures).
func Bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Geomean returns the geometric mean of positive values; non-positive
// entries are skipped. Sums of logs avoid overflow for long series.
func Geomean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// MetricsTable renders a name->value metrics listing (as produced by the
// obs registry) as a table. It takes the already-paired rows so report does
// not depend on the obs package.
func MetricsTable(title string, names []string, value func(string) int64) *Table {
	t := New(title, "Metric", "Value")
	for _, n := range names {
		t.Add(n, value(n))
	}
	return t
}
