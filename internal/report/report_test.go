package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := New("demo", "Name", "Value")
	tab.Add("short", 1.5)
	tab.Add("a much longer name", 123456)
	tab.Note("a footnote with %d%%", 50)
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("missing title: %q", lines[0])
	}
	// Column starts align between header and rows.
	hdrIdx := strings.Index(lines[1], "Value")
	rowIdx := strings.Index(lines[3], "1.50")
	if hdrIdx != rowIdx {
		t.Errorf("columns misaligned: header at %d, row at %d\n%s", hdrIdx, rowIdx, s)
	}
	if !strings.Contains(s, "note: a footnote with 50%") {
		t.Errorf("footnote missing:\n%s", s)
	}
}

func TestFloatFormatting(t *testing.T) {
	tab := New("", "v")
	tab.Add(3.14159)
	if !strings.Contains(tab.String(), "3.14") || strings.Contains(tab.String(), "3.14159") {
		t.Errorf("floats should render with 2 decimals: %s", tab.String())
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 1, 10); got != "#####" {
		t.Errorf("Bar(0.5,1,10) = %q", got)
	}
	if got := Bar(2, 1, 10); got != "##########" {
		t.Errorf("Bar should clamp at width: %q", got)
	}
	if Bar(-1, 1, 10) != "" || Bar(1, 0, 10) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %f, want 4", g)
	}
	if g := Geomean([]float64{5, 0, -3}); math.Abs(g-5) > 1e-9 {
		t.Errorf("non-positive entries must be skipped: %f", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	// Log-sum formulation survives values that would overflow a product.
	big := make([]float64, 100)
	for i := range big {
		big[i] = 1e300
	}
	if g := Geomean(big); math.IsInf(g, 0) || math.Abs(g-1e300)/1e300 > 1e-9 {
		t.Errorf("Geomean overflowed: %g", g)
	}
}

func TestMetricsTable(t *testing.T) {
	vals := map[string]int64{"session.offloads": 3, "link.bytes_to_server": 9000}
	tab := MetricsTable("m", []string{"link.bytes_to_server", "session.offloads"},
		func(n string) int64 { return vals[n] })
	s := tab.String()
	if !strings.Contains(s, "session.offloads") || !strings.Contains(s, "9000") {
		t.Errorf("metrics table missing entries:\n%s", s)
	}
}
