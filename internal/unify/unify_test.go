package unify

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/mem"
)

func buildModule(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	mod := ir.NewModule("u")
	b := ir.NewBuilder(mod)
	used := b.GlobalVar("used", ir.I32, ir.Int(3))
	unused := b.GlobalVar("unused", ir.I64)
	_ = unused
	target := b.NewFunc("target", ir.I32)
	p := b.CallExtern(ir.ExternMalloc, ir.Int(64))
	b.CallExtern(ir.ExternFree, p)
	b.Ret(b.Load(used))
	b.NewFunc("main", ir.I32)
	q := b.CallExtern(ir.ExternMalloc, ir.Int(32))
	_ = q
	b.Ret(b.Call(target))
	b.Finish()
	return mod, target
}

func TestReplaceHeapAllocation(t *testing.T) {
	mod, _ := buildModule(t)
	n := ReplaceHeapAllocation(mod)
	if n != 3 {
		t.Errorf("rewrote %d sites, want 3 (two mallocs, one free)", n)
	}
	for _, f := range mod.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if call, ok := in.(*ir.Call); ok {
					if call.Callee.Extern == ir.ExternMalloc || call.Callee.Extern == ir.ExternFree {
						t.Fatalf("%s still calls %s", f.Nam, call.Callee.Nam)
					}
				}
			}
		}
	}
}

func TestReferencedGlobalsScopedToReachable(t *testing.T) {
	mod, target := buildModule(t)
	cg := analysis.BuildCallGraph(mod)
	gs := ReferencedGlobals(mod, cg.Reachable(target))
	if len(gs) != 1 || gs[0].Nam != "used" {
		t.Fatalf("referenced globals = %v, want [used]", names(gs))
	}
}

func TestReallocateGlobalsAssignsAlignedUVAHomes(t *testing.T) {
	mod, target := buildModule(t)
	cg := analysis.BuildCallGraph(mod)
	gs := Unify(mod, cg, []*ir.Func{target}, arch.ARM32())
	if !mod.Unified {
		t.Error("module not marked unified")
	}
	for _, g := range gs {
		if g.Home != ir.HomeUVA {
			t.Errorf("global %s not UVA-homed", g.Nam)
		}
		if g.UVAAddr < mem.GlobalsBase {
			t.Errorf("global %s UVA address 0x%x below region base", g.Nam, g.UVAAddr)
		}
		align := uint32(ir.LayoutOf(g.Elem, arch.ARM32()).Align)
		if align > 1 && g.UVAAddr%align != 0 {
			t.Errorf("global %s misaligned at 0x%x", g.Nam, g.UVAAddr)
		}
	}
	if u := mod.Global("unused"); u.Home != ir.HomeMachine {
		t.Error("unreferenced global should stay machine-local")
	}
}

func TestReallocateDisjointHomes(t *testing.T) {
	mod := ir.NewModule("d")
	b := ir.NewBuilder(mod)
	g1 := b.GlobalVar("a", ir.Array(ir.I64, 100))
	g2 := b.GlobalVar("b", ir.I32)
	g3 := b.GlobalVar("c", ir.F64)
	ReallocateGlobals([]*ir.Global{g1, g2, g3}, arch.ARM32())
	type span struct{ lo, hi uint32 }
	spans := []span{
		{g1.UVAAddr, g1.UVAAddr + 800},
		{g2.UVAAddr, g2.UVAAddr + 4},
		{g3.UVAAddr, g3.UVAAddr + 8},
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Errorf("globals %d and %d overlap", i, j)
			}
		}
	}
}

func names(gs []*ir.Global) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Nam
	}
	return out
}
