// Package unify implements the memory unification code generation of
// Section 3.2. After these passes the mobile and server binaries agree on
// where every shared object lives (unified virtual addresses) and how it is
// laid out (the mobile data layout is the standard):
//
//   - heap allocation replacement: every malloc/free site becomes
//     u_malloc/u_free on the shared UVA heap — all of them, because
//     imprecise alias analysis cannot prove an object never reaches the
//     server;
//   - referenced global variable allocation: globals the offloaded code may
//     touch move to fixed UVA homes, so a pointer taken on the mobile
//     device dereferences to the same object on the server;
//   - layout realignment, address size conversion and endianness
//     translation are performed by lowering both partitions against the
//     mobile architecture's data layout (ir.Lower with standard=mobile),
//     which bakes mobile struct offsets into the server binary and flags
//     pointer-width and byte-order conversions on each memory access.
package unify

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/mem"
)

// ReplaceHeapAllocation rewrites every malloc/free call site to
// u_malloc/u_free and returns the number of rewritten sites.
func ReplaceHeapAllocation(m *ir.Module) int {
	umalloc := m.Extern(ir.ExternUMalloc)
	ufree := m.Extern(ir.ExternUFree)
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				switch call.Callee.Extern {
				case ir.ExternMalloc:
					call.Callee = umalloc
					n++
				case ir.ExternFree:
					call.Callee = ufree
					n++
				}
			}
		}
	}
	return n
}

// ReferencedGlobals returns the globals referenced (directly or through
// address escape) by any function in reach. This is the set Table 4 counts
// in its "Referenced GV." column.
func ReferencedGlobals(m *ir.Module, reach map[*ir.Func]bool) []*ir.Global {
	used := make(map[*ir.Global]bool)
	for f := range reach {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, op := range in.Operands() {
					if g, ok := op.(*ir.Global); ok {
						used[g] = true
					}
				}
			}
		}
	}
	out := make([]*ir.Global, 0, len(used))
	for g := range used {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nam < out[j].Nam })
	return out
}

// ReallocateGlobals assigns each global a fixed home on the UVA globals
// region, laid out under the standard (mobile) data layout. Both binaries
// resolve the global to this address, which replaces the paper's
// u_malloc-at-startup indirection with the equivalent deterministic
// placement its compiler computes.
func ReallocateGlobals(globals []*ir.Global, std *arch.Spec) {
	addr := mem.GlobalsBase
	for _, g := range globals {
		lay := ir.LayoutOf(g.Elem, std)
		a := addr
		if al := uint32(lay.Align); al > 1 {
			a = (a + al - 1) / al * al
		}
		g.Home = ir.HomeUVA
		g.UVAAddr = a
		addr = a + uint32(lay.Size)
	}
}

// Unify runs the whole-module unification: heap replacement plus
// reallocation of the globals referenced by functions reachable from the
// offload targets. It returns the reallocated globals.
func Unify(m *ir.Module, cg *analysis.CallGraph, targets []*ir.Func, std *arch.Spec) []*ir.Global {
	ReplaceHeapAllocation(m)
	reach := cg.Reachable(targets...)
	gs := ReferencedGlobals(m, reach)
	ReallocateGlobals(gs, std)
	m.Unified = true
	return gs
}
