// Package profile implements the hot function/loop profiler of Section 3.1.
//
// The profiler attaches to an interpreter Machine as an execution listener
// and measures, for every function and every natural loop, the metrics the
// performance estimator consumes (Table 3): cumulative execution time,
// invocation count, and memory footprint (distinct pages touched while the
// candidate is live). Profiling runs use a *profiling input*; the paper
// evaluates with a different input, and so do the workloads here.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/mem"
	"repro/internal/simtime"
)

// CandidateKind distinguishes function candidates from loop candidates.
type CandidateKind int

const (
	KindFunc CandidateKind = iota
	KindLoop
)

// Candidate identifies one profiled region: a function, or a natural loop
// within a function.
type Candidate struct {
	Kind CandidateKind
	Fn   *ir.Func
	Loop *analysis.Loop // nil for functions
}

// Name returns the candidate's report name, e.g. "getAITurn" or
// "getAITurn/for_i". Loop offload targets in the paper print as
// "<fn>_<loop>" (e.g. main_for.cond); Display follows that convention.
func (c Candidate) Name() string {
	if c.Kind == KindFunc {
		return c.Fn.Nam
	}
	return c.Fn.Nam + "/" + c.Loop.Name()
}

// Display returns the paper-style target name.
func (c Candidate) Display() string {
	if c.Kind == KindFunc {
		return c.Fn.Nam
	}
	return c.Fn.Nam + "_" + c.Loop.Header.Nam
}

// Stats aggregates one candidate's measurements.
type Stats struct {
	Candidate Candidate
	// Time is cumulative execution time spent with the candidate live
	// (inclusive of callees, like the paper's 26.0s for getAITurn within
	// 27.0s runGame).
	Time simtime.PS
	// SelfTime is the exclusive time: Time minus the time spent in called
	// functions (function candidates only; loops report zero).
	SelfTime simtime.PS
	// Invocations counts entries (calls, or loop entries).
	Invocations int
	// Pages is the number of distinct memory pages touched while live.
	Pages int
	// MemBytes is Pages * PageSize: the estimator's M in Equation 1.
	MemBytes int64

	// active counts live activations so recursive re-entry is not
	// double-counted: time accumulates only when the outermost activation
	// exits.
	active  int
	pageSet map[uint32]struct{}
}

// Report is the result of one profiling run.
type Report struct {
	// Total is the whole-program execution time on the profiling machine.
	Total simtime.PS
	// ByName maps candidate Name() to stats.
	ByName map[string]*Stats
}

// Get returns stats for a candidate name ("fn" or "fn/loop").
func (r *Report) Get(name string) *Stats { return r.ByName[name] }

// Sorted returns all stats ordered by decreasing time, then name.
func (r *Report) Sorted() []*Stats {
	out := make([]*Stats, 0, len(r.ByName))
	for _, s := range r.ByName {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Candidate.Name() < out[j].Candidate.Name()
	})
	return out
}

// Coverage returns the fraction of total program time spent in the named
// candidate (Table 4 "Cover.").
func (r *Report) Coverage(name string) float64 {
	s := r.ByName[name]
	if s == nil || r.Total == 0 {
		return 0
	}
	return float64(s.Time) / float64(r.Total)
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile: total %v\n", r.Total)
	for _, s := range r.Sorted() {
		fmt.Fprintf(&sb, "  %-28s time %12v  inv %6d  mem %8.2f MB\n",
			s.Candidate.Name(), s.Time, s.Invocations, float64(s.MemBytes)/(1<<20))
	}
	return sb.String()
}

// Profiler is an interp.Listener plus a memory touch hook.
type Profiler struct {
	machine *interp.Machine

	funcStats map[*ir.Func]*Stats
	loopStats map[*analysis.Loop]*Stats
	loopInfo  map[*ir.Func]*funcLoops

	// Active candidate activations, innermost last.
	stack []*activation
}

type activation struct {
	stats   *Stats
	entered simtime.PS
	pages   map[uint32]struct{}
	// loops currently active within this function activation.
	loops []*loopActivation
	fn    *ir.Func
	cur   *analysis.Loop // innermost loop containing the current block
	// calleeTime accumulates time spent in functions this activation
	// called, for self-time accounting.
	calleeTime simtime.PS
}

type loopActivation struct {
	stats   *Stats
	loop    *analysis.Loop
	entered simtime.PS
	pages   map[uint32]struct{}
}

type funcLoops struct {
	forest *analysis.LoopForest
	// inner maps each block to its innermost containing loop (nil if
	// none).
	inner map[*ir.Block]*analysis.Loop
}

// Attach builds a profiler for m and registers its hooks. Call Detach when
// done.
func Attach(m *interp.Machine) (*Profiler, error) {
	p := &Profiler{
		machine:   m,
		funcStats: make(map[*ir.Func]*Stats),
		loopStats: make(map[*analysis.Loop]*Stats),
		loopInfo:  make(map[*ir.Func]*funcLoops),
	}
	for _, f := range m.Mod.Funcs {
		if f.IsExtern() {
			continue
		}
		cfg, err := analysis.BuildCFG(f)
		if err != nil {
			return nil, err
		}
		forest := analysis.FindLoops(cfg, analysis.Dominators(cfg))
		fl := &funcLoops{forest: forest, inner: make(map[*ir.Block]*analysis.Loop)}
		// Loops are sorted outermost-first; later (inner) assignments win.
		for _, l := range forest.Loops {
			for b := range l.Blocks {
				if cur := fl.inner[b]; cur == nil || len(l.Blocks) < len(cur.Blocks) {
					fl.inner[b] = l
				}
			}
		}
		p.loopInfo[f] = fl
		p.funcStats[f] = &Stats{Candidate: Candidate{Kind: KindFunc, Fn: f}}
		for _, l := range forest.Loops {
			p.loopStats[l] = &Stats{Candidate: Candidate{Kind: KindLoop, Fn: f, Loop: l}}
		}
	}
	m.Listener = p
	m.Mem.Touch = p.onTouch
	return p, nil
}

// Detach removes the profiler's hooks from the machine.
func (p *Profiler) Detach() {
	p.machine.Listener = nil
	p.machine.Mem.Touch = nil
}

func (p *Profiler) onTouch(pn uint32) {
	for _, act := range p.stack {
		act.pages[pn] = struct{}{}
		for _, la := range act.loops {
			la.pages[pn] = struct{}{}
		}
	}
}

// EnterFunc implements interp.Listener.
func (p *Profiler) EnterFunc(m *interp.Machine, f *ir.Func) {
	st := p.funcStats[f]
	if st == nil {
		return
	}
	st.Invocations++
	st.active++
	p.stack = append(p.stack, &activation{
		stats:   st,
		entered: m.Clock,
		pages:   make(map[uint32]struct{}),
		fn:      f,
	})
}

// ExitFunc implements interp.Listener.
func (p *Profiler) ExitFunc(m *interp.Machine, f *ir.Func) {
	if len(p.stack) == 0 {
		return
	}
	act := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	// Close any loops still active (function returned from inside a loop).
	for i := len(act.loops) - 1; i >= 0; i-- {
		p.closeLoop(m, act, act.loops[i])
	}
	act.loops = nil
	act.stats.active--
	elapsed := m.Clock - act.entered
	if act.stats.active == 0 {
		act.stats.Time += elapsed
	}
	act.stats.SelfTime += elapsed - act.calleeTime
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].calleeTime += elapsed
	}
	mergePages(act.stats, act.pages)
}

// EnterBlock implements interp.Listener: it tracks loop entry and exit by
// watching the innermost-loop assignment of each executed block.
func (p *Profiler) EnterBlock(m *interp.Machine, f *ir.Func, b *ir.Block) {
	if len(p.stack) == 0 {
		return
	}
	act := p.stack[len(p.stack)-1]
	if act.fn != f {
		return
	}
	fl := p.loopInfo[f]
	target := fl.inner[b]
	if target == act.cur {
		// Re-entering the header of the current loop is a new iteration,
		// not a new activation; nothing to do.
		return
	}
	// Close loops that do not contain the new block.
	for len(act.loops) > 0 {
		top := act.loops[len(act.loops)-1]
		if loopContains(top.loop, target) {
			break
		}
		p.closeLoop(m, act, top)
		act.loops = act.loops[:len(act.loops)-1]
	}
	// Open loops from the outside in until we reach the target.
	var toOpen []*analysis.Loop
	for l := target; l != nil; l = l.Parent {
		if len(act.loops) > 0 && act.loops[len(act.loops)-1].loop == l {
			break
		}
		already := false
		for _, la := range act.loops {
			if la.loop == l {
				already = true
				break
			}
		}
		if already {
			break
		}
		toOpen = append(toOpen, l)
	}
	for i := len(toOpen) - 1; i >= 0; i-- {
		l := toOpen[i]
		st := p.loopStats[l]
		st.Invocations++
		st.active++
		act.loops = append(act.loops, &loopActivation{
			stats:   st,
			loop:    l,
			entered: m.Clock,
			pages:   make(map[uint32]struct{}),
		})
	}
	act.cur = target
}

func (p *Profiler) closeLoop(m *interp.Machine, act *activation, la *loopActivation) {
	la.stats.active--
	if la.stats.active == 0 {
		la.stats.Time += m.Clock - la.entered
	}
	mergePages(la.stats, la.pages)
}

func loopContains(outer, inner *analysis.Loop) bool {
	for l := inner; l != nil; l = l.Parent {
		if l == outer {
			return true
		}
	}
	return false
}

func mergePages(st *Stats, pages map[uint32]struct{}) {
	// Approximate distinct pages across invocations with the maximum
	// single-invocation footprint plus growth: we count pages not yet
	// attributed. Exact cross-invocation dedup would need a global set per
	// candidate; keep one.
	if st.pageSet == nil {
		st.pageSet = make(map[uint32]struct{})
	}
	for pn := range pages {
		st.pageSet[pn] = struct{}{}
	}
	st.Pages = len(st.pageSet)
	st.MemBytes = int64(st.Pages) * mem.PageSize
}

// Run profiles one whole execution of the machine's main function and
// returns the report.
func Run(m *interp.Machine) (*Report, error) {
	p, err := Attach(m)
	if err != nil {
		return nil, err
	}
	defer p.Detach()
	start := m.Clock
	if _, err := m.RunMain(); err != nil {
		return nil, err
	}
	return p.Report(m.Clock - start), nil
}

// Report finalizes the collected statistics.
func (p *Profiler) Report(total simtime.PS) *Report {
	r := &Report{Total: total, ByName: make(map[string]*Stats)}
	for _, st := range p.funcStats {
		if st.Invocations > 0 {
			r.ByName[st.Candidate.Name()] = st
		}
	}
	for _, st := range p.loopStats {
		if st.Invocations > 0 {
			r.ByName[st.Candidate.Name()] = st
		}
	}
	return r
}
