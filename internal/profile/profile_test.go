package profile

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
)

// buildChessSkeleton builds the control structure of the paper's Figure 3
// chess example: main -> runGame -> {getPlayerTurn, getAITurn{for_i{for_j}}}
// with 3 game turns and depth 12 (so for_j runs 36 times, as in Table 3).
func buildChessSkeleton(mod *ir.Module) {
	b := ir.NewBuilder(mod)

	ai := b.NewFunc("getAITurn", ir.F64, ir.P("depth", ir.I32))
	score := b.Alloca(ir.F64)
	b.Store(score, ir.Float(0))
	b.For("for_i", ir.Int(0), b.F.Params[0], ir.Int(1), func(i ir.Value) {
		b.For("for_j", ir.Int(0), ir.Int(64), ir.Int(1), func(j ir.Value) {
			f := b.Convert(ir.ConvIntToFP, j, ir.F64)
			b.Store(score, b.Add(b.Load(score), b.Mul(f, f)))
		})
	})
	b.Ret(b.Load(score))

	player := b.NewFunc("getPlayerTurn", ir.I32)
	b.Ret(ir.Int(1))

	run := b.NewFunc("runGame", ir.F64)
	acc := b.Alloca(ir.F64)
	b.Store(acc, ir.Float(0))
	b.For("turns", ir.Int(0), ir.Int(3), ir.Int(1), func(i ir.Value) {
		b.Call(player)
		b.Store(acc, b.Add(b.Load(acc), b.Call(ai, ir.Int(12))))
	})
	b.Ret(b.Load(acc))

	b.NewFunc("main", ir.I32)
	b.Call(run)
	b.Ret(ir.Int(0))
	b.Finish()
}

func profiled(t *testing.T) *Report {
	t.Helper()
	mod := ir.NewModule("chess")
	buildChessSkeleton(mod)
	spec := arch.ARM32()
	ir.Lower(mod, spec, spec)
	m, err := interp.NewMachine(interp.Config{Name: "prof", Spec: spec, Mod: mod})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestInvocationCounts(t *testing.T) {
	r := profiled(t)
	cases := map[string]int{
		"main":            1,
		"runGame":         1,
		"getAITurn":       3,
		"getPlayerTurn":   3,
		"getAITurn/for_i": 3,
		"getAITurn/for_j": 36, // 3 calls x 12 outer iterations — Table 3's 12x ratio
		"runGame/turns":   1,
	}
	for name, want := range cases {
		st := r.Get(name)
		if st == nil {
			t.Errorf("no stats for %s", name)
			continue
		}
		if st.Invocations != want {
			t.Errorf("%s invocations = %d, want %d", name, st.Invocations, want)
		}
	}
}

func TestTimeNesting(t *testing.T) {
	r := profiled(t)
	// Inclusive times must nest: main >= runGame >= getAITurn >= for_i >= for_j.
	chain := []string{"main", "runGame", "getAITurn", "getAITurn/for_i", "getAITurn/for_j"}
	for i := 0; i < len(chain)-1; i++ {
		outer, inner := r.Get(chain[i]), r.Get(chain[i+1])
		if outer.Time < inner.Time {
			t.Errorf("%s time %v < %s time %v", chain[i], outer.Time, chain[i+1], inner.Time)
		}
	}
	if r.Total < r.Get("main").Time {
		t.Error("total below main time")
	}
	// getAITurn dominates the program like the paper's 26.0s / 27.0s.
	if cov := r.Coverage("getAITurn"); cov < 0.80 {
		t.Errorf("getAITurn coverage = %.2f, want > 0.80", cov)
	}
}

func TestMemoryFootprint(t *testing.T) {
	r := profiled(t)
	if r.Get("getAITurn").Pages == 0 {
		t.Error("getAITurn touched no pages?")
	}
	if r.Get("getAITurn").MemBytes <= 0 {
		t.Error("MemBytes not derived")
	}
}

func TestSortedAndString(t *testing.T) {
	r := profiled(t)
	sorted := r.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Time < sorted[i].Time {
			t.Error("Sorted not descending by time")
		}
	}
	s := r.String()
	if !strings.Contains(s, "getAITurn") || !strings.Contains(s, "for_j") {
		t.Errorf("report string missing candidates:\n%s", s)
	}
}

func TestRecursionNotDoubleCounted(t *testing.T) {
	mod := ir.NewModule("rec")
	b := ir.NewBuilder(mod)
	fib := b.NewFunc("fib", ir.I32, ir.P("n", ir.I32))
	res := b.Alloca(ir.I32)
	b.If(b.Cmp(ir.LT, b.F.Params[0], ir.Int(2)),
		func() { b.Store(res, b.F.Params[0]) },
		func() {
			a := b.Call(fib, b.Sub(b.F.Params[0], ir.Int(1)))
			c := b.Call(fib, b.Sub(b.F.Params[0], ir.Int(2)))
			b.Store(res, b.Add(a, c))
		})
	b.Ret(b.Load(res))
	b.NewFunc("main", ir.I32)
	b.Ret(b.Call(fib, ir.Int(12)))
	b.Finish()
	spec := arch.ARM32()
	ir.Lower(mod, spec, spec)
	m, _ := interp.NewMachine(interp.Config{Name: "rec", Spec: spec, Mod: mod})
	r, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	fibStats := r.Get("fib")
	if fibStats.Invocations < 100 {
		t.Errorf("fib invocations = %d, want hundreds", fibStats.Invocations)
	}
	// Inclusive time of the recursive root must not exceed main's.
	if fibStats.Time > r.Get("main").Time {
		t.Errorf("recursive fib time %v exceeds main %v (double counting)", fibStats.Time, r.Get("main").Time)
	}
}

func TestDetachRestoresMachine(t *testing.T) {
	mod := ir.NewModule("d")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	b.Ret(ir.Int(0))
	b.Finish()
	spec := arch.ARM32()
	ir.Lower(mod, spec, spec)
	m, _ := interp.NewMachine(interp.Config{Name: "d", Spec: spec, Mod: mod})
	p, err := Attach(m)
	if err != nil {
		t.Fatal(err)
	}
	p.Detach()
	if m.Listener != nil || m.Mem.Touch != nil {
		t.Error("Detach left hooks installed")
	}
}

func TestSelfTimeExcludesCallees(t *testing.T) {
	r := profiled(t)
	run := r.Get("runGame")
	ai := r.Get("getAITurn")
	// runGame's inclusive time contains getAITurn, but its self time must
	// not: the turn loop's own bookkeeping is a sliver of the program.
	if run.SelfTime >= ai.Time {
		t.Errorf("runGame self %v should be far below getAITurn inclusive %v", run.SelfTime, ai.Time)
	}
	if run.SelfTime <= 0 {
		t.Error("runGame must have some self time (its own loop control)")
	}
	// A leaf's self time equals its inclusive time.
	leaf := r.Get("getPlayerTurn")
	if leaf.SelfTime != leaf.Time {
		t.Errorf("leaf self %v != inclusive %v", leaf.SelfTime, leaf.Time)
	}
	// Self times of all functions sum to main's inclusive time.
	var sum int64
	for _, st := range r.ByName {
		if st.Candidate.Kind == KindFunc {
			sum += int64(st.SelfTime)
		}
	}
	if main := r.Get("main"); int64(main.Time) != sum {
		t.Errorf("self-time sum %d != main inclusive %d", sum, int64(main.Time))
	}
}
