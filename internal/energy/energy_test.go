package energy

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

func TestEnergyIntegration(t *testing.T) {
	m := FastModel()
	r := NewRecorder(0, Compute)
	r.Transition(2*simtime.Second, Wait)
	r.Transition(3*simtime.Second, TX)
	r.Finish(4 * simtime.Second)

	want := m.MW[Compute]*2 + m.MW[Wait]*1 + m.MW[TX]*1
	if got := r.EnergyMJ(m); math.Abs(got-want) > 1e-6 {
		t.Errorf("EnergyMJ = %f, want %f", got, want)
	}
	if r.Duration() != 4*simtime.Second {
		t.Errorf("Duration = %v, want 4s", r.Duration())
	}
}

func TestPulseReturnsToPreviousState(t *testing.T) {
	r := NewRecorder(0, Wait)
	r.Pulse(1*simtime.Second, 500*simtime.Millisecond, TX)
	r.Finish(3 * simtime.Second)
	if got := r.TimeIn(TX); got != 500*simtime.Millisecond {
		t.Errorf("TX time = %v, want 500ms", got)
	}
	if got := r.TimeIn(Wait); got != 2500*simtime.Millisecond {
		t.Errorf("Wait time = %v, want 2.5s", got)
	}
}

func TestOutOfOrderTransitionClamped(t *testing.T) {
	r := NewRecorder(simtime.Second, Compute)
	r.Transition(500*simtime.Millisecond, Wait) // earlier than current time
	r.Finish(2 * simtime.Second)
	for _, s := range r.Segments() {
		if s.End < s.Start {
			t.Errorf("negative segment %+v", s)
		}
	}
}

func TestModelsMatchPaperConstants(t *testing.T) {
	fast, slow := FastModel(), SlowModel()
	if fast.MW[Idle] != 300 || fast.MW[Wait] != 1350 || fast.MW[RX] != 2000 {
		t.Error("fast model constants drifted from Section 5.2")
	}
	// Remote I/O service: 2000 mW fast vs 1700 mW slow (Figure 8(b)/(c)).
	if fast.MW[IOServe] <= slow.MW[IOServe] {
		t.Error("IOServe must draw more on the fast network")
	}
	// TX peaks in the paper's 2000-5000 mW band.
	for _, m := range []PowerModel{fast, slow} {
		if m.MW[TX] < 2000 || m.MW[TX] > 5000 {
			t.Errorf("%s TX=%f outside 2000-5000 mW", m.Name, m.MW[TX])
		}
	}
}

func TestTraceSampling(t *testing.T) {
	m := FastModel()
	r := NewRecorder(0, Compute)
	r.Transition(simtime.Second, Wait)
	r.Finish(2 * simtime.Second)
	tr := r.Trace(m, 100*simtime.Millisecond)
	if len(tr) != 20 {
		t.Fatalf("trace has %d samples, want 20", len(tr))
	}
	if tr[0] != m.MW[Compute] || tr[19] != m.MW[Wait] {
		t.Errorf("trace endpoints = %f, %f", tr[0], tr[19])
	}
}

func TestRenderTrace(t *testing.T) {
	s := RenderTrace([]float64{0, 1000, 5000, 2500}, 5000, 4)
	if len([]rune(s)) != 4 {
		t.Errorf("rendered width = %d, want 4 (%q)", len([]rune(s)), s)
	}
}

func TestLocalEnergyBaseline(t *testing.T) {
	m := SlowModel()
	if got := LocalEnergyMJ(m, 10*simtime.Second); got != 22000 {
		t.Errorf("local baseline = %f, want 22000 mJ", got)
	}
}

func TestSummaryIncludesStates(t *testing.T) {
	r := NewRecorder(0, Compute)
	r.Finish(simtime.Second)
	s := r.Summary(FastModel())
	if len(s) == 0 {
		t.Error("empty summary")
	}
}
