// Package energy models the mobile device's battery consumption
// (Section 5.2). The paper measures, with a Monsoon power monitor, roughly
// 300 mW idle, 1350 mW waiting for signals, 2000 mW receiving, and
// 2000-5000 mW transmitting; remote I/O service draws ~2000 mW on 802.11ac
// versus ~1700 mW on 802.11n (Figure 8(b)/(c)), which is why gobmk spends
// *more* battery on the fast network. Energy is the integral of state power
// over simulated time, and the recorded segments double as the Figure 8
// power-over-time traces.
package energy

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// State is the mobile device's power state.
type State int

const (
	Idle    State = iota // screen-on idle
	Compute              // executing the program locally
	Wait                 // blocked while the server computes
	RX                   // receiving data
	TX                   // transmitting data
	IOServe              // servicing a remote I/O request
	NumStates
)

func (s State) String() string { return stateNames[s] }

// PowerModel gives the power draw of each state in milliwatts.
type PowerModel struct {
	Name string
	MW   [NumStates]float64
}

// FastModel models the 802.11ac environment.
func FastModel() PowerModel {
	var m PowerModel
	m.Name = "fast"
	m.MW[Idle] = 300
	m.MW[Compute] = 2200
	m.MW[Wait] = 1350
	m.MW[RX] = 2000
	m.MW[TX] = 4500
	m.MW[IOServe] = 2000
	return m
}

// SlowModel models the 802.11n environment: lower radio power, notably for
// remote I/O service (1700 mW vs 2000 mW, Figure 8(c)).
func SlowModel() PowerModel {
	var m PowerModel
	m.Name = "slow"
	m.MW[Idle] = 300
	m.MW[Compute] = 2200
	m.MW[Wait] = 1350
	m.MW[RX] = 1700
	m.MW[TX] = 2000
	m.MW[IOServe] = 1700
	return m
}

// Segment is one maximal interval in a single state.
type Segment struct {
	State State
	Start simtime.PS
	End   simtime.PS
}

// Recorder accumulates the mobile device's power-state timeline.
type Recorder struct {
	segs  []Segment
	cur   State
	at    simtime.PS
	done  bool
	endAt simtime.PS

	// Tracer, when set, receives one KRadio span per closed segment, so
	// the Figure 8 radio power timeline appears in the exported trace.
	Tracer *obs.Tracer
}

// stateNames provides static strings for trace events (State.String
// indexes the same table; sharing constants keeps Emit allocation-free).
var stateNames = [NumStates]string{"idle", "compute", "wait", "rx", "tx", "ioserve"}

// NewRecorder starts recording at time start in the given state.
func NewRecorder(start simtime.PS, s State) *Recorder {
	return &Recorder{cur: s, at: start}
}

// Transition closes the current segment at time t and enters state s.
// Out-of-order times are clamped forward (zero-length segments are fine).
func (r *Recorder) Transition(t simtime.PS, s State) {
	if r.done {
		return
	}
	if t < r.at {
		t = r.at
	}
	if t > r.at {
		r.segs = append(r.segs, Segment{State: r.cur, Start: r.at, End: t})
		r.Tracer.Emit(obs.Event{Time: r.at, Dur: t - r.at, Kind: obs.KRadio,
			Track: obs.TrackRadio, Name: stateNames[r.cur]})
	}
	r.cur = s
	r.at = t
}

// Pulse records a burst of state s for duration d starting at t, returning
// to the current state afterwards. Used for page-fault service and remote
// I/O bursts while the device otherwise waits.
func (r *Recorder) Pulse(t, d simtime.PS, s State) {
	if d <= 0 {
		return
	}
	prev := r.cur
	r.Transition(t, s)
	r.Transition(t+d, prev)
}

// Finish closes the timeline at time t.
func (r *Recorder) Finish(t simtime.PS) {
	r.Transition(t, r.cur)
	r.done = true
	r.endAt = t
}

// Segments returns the recorded timeline.
func (r *Recorder) Segments() []Segment { return r.segs }

// Duration returns the recorded span.
func (r *Recorder) Duration() simtime.PS {
	if len(r.segs) == 0 {
		return 0
	}
	return r.segs[len(r.segs)-1].End - r.segs[0].Start
}

// EnergyMJ integrates power over the timeline: millijoules.
func (r *Recorder) EnergyMJ(m PowerModel) float64 {
	var mj float64
	for _, s := range r.segs {
		mj += m.MW[s.State] * (s.End - s.Start).Seconds()
	}
	return mj
}

// TimeIn returns cumulative time spent in state s.
func (r *Recorder) TimeIn(s State) simtime.PS {
	var d simtime.PS
	for _, seg := range r.segs {
		if seg.State == s {
			d += seg.End - seg.Start
		}
	}
	return d
}

// Trace samples the instantaneous power at steps of dt, producing the
// Figure 8 power-over-time series.
func (r *Recorder) Trace(m PowerModel, dt simtime.PS) []float64 {
	if len(r.segs) == 0 || dt <= 0 {
		return nil
	}
	start := r.segs[0].Start
	end := r.segs[len(r.segs)-1].End
	n := int((end-start)/dt) + 1
	out := make([]float64, 0, n)
	si := 0
	for t := start; t < end; t += dt {
		for si < len(r.segs)-1 && t >= r.segs[si].End {
			si++
		}
		out = append(out, m.MW[r.segs[si].State])
	}
	return out
}

// RenderTrace draws an ASCII sparkline of the trace for terminal reports.
func RenderTrace(trace []float64, maxMW float64, width int) string {
	if len(trace) == 0 {
		return ""
	}
	if width <= 0 {
		width = 80
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	step := float64(len(trace)) / float64(width)
	if step < 1 {
		step = 1
	}
	var sb strings.Builder
	for i := 0.0; int(i) < len(trace) && sb.Len() < width*4; i += step {
		v := trace[int(i)]
		g := int(v / maxMW * float64(len(glyphs)-1))
		if g < 0 {
			g = 0
		}
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		sb.WriteRune(glyphs[g])
	}
	return sb.String()
}

// LocalEnergyMJ is the baseline: the whole program computed locally for
// duration d.
func LocalEnergyMJ(m PowerModel, d simtime.PS) float64 {
	return m.MW[Compute] * d.Seconds()
}

// Summary formats per-state time and total energy.
func (r *Recorder) Summary(m PowerModel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "energy %.1f mJ over %v:", r.EnergyMJ(m), r.Duration())
	for s := State(0); s < NumStates; s++ {
		if d := r.TimeIn(s); d > 0 {
			fmt.Fprintf(&sb, " %s=%v", s, d)
		}
	}
	return sb.String()
}
