// Command offloadrun executes one workload locally and under the offload
// runtime on both network environments, printing the Figure 6/7-style
// summary for that single program.
//
// Usage:
//
//	offloadrun -w 445.gobmk
//	offloadrun -w chess -depth 9 -turns 2
//	offloadrun -w 164.gzip -faults "drop=0.2,outage=900ms-20s,seed=6"
//	offloadrun -w 429.mcf -tiers 3way
//
// -tiers places every offload over the mobile -> edge -> cloud
// hierarchy (3way, edge-only or cloud-only) instead of the classic
// binary gate, printing the per-tier placement counts after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/offrt"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/tiers"
	"repro/internal/workloads"
)

// observability carries the optional -trace/-metrics/-profile/-breakdown
// instrumentation through a run and writes/prints the artifacts at the end.
type observability struct {
	traceFile    string
	profileFile  string
	breakdown    bool
	critPath     bool
	exemplars    int
	tracer       *obs.Tracer
	metrics      *obs.Metrics
	faults       *faults.Plan
	serverFaults *faults.ServerPlan
	migrate      bool
	topo         *tiers.Topology
	sampleEvery  simtime.PS
}

func newObservability(traceFile, profileFile string, breakdown, wantMetrics, critPath bool, exemplars int) *observability {
	o := &observability{traceFile: traceFile, profileFile: profileFile, breakdown: breakdown,
		critPath: critPath, exemplars: exemplars}
	if traceFile != "" {
		o.tracer = obs.NewTracer(0)
	}
	if (breakdown || critPath) && o.tracer == nil {
		// The breakdown and critical-path analyses replay the trace; without
		// -trace, capture into a generous in-memory ring (never written to
		// disk).
		o.tracer = obs.NewTracer(1 << 20)
	}
	if wantMetrics {
		o.metrics = obs.NewMetrics()
	}
	if profileFile != "" {
		o.sampleEvery = interp.DefaultSamplePeriod
	}
	return o
}

// attach threads the instrumentation and fault plans into a framework.
func (o *observability) attach(fw *core.Framework) {
	fw.Tracer, fw.Metrics = o.tracer, o.metrics
	fw.Faults = o.faults
	fw.ServerFaults = o.serverFaults
	if o.migrate {
		m := offrt.DefaultMigration()
		fw.Migration = &m
	}
	fw.Tiers = o.topo
	fw.SampleEvery = o.sampleEvery
}

// reportRun prints/writes the per-run analysis artifacts for the offloaded
// execution the flags asked about: the folded flamegraph profile + top
// functions (-profile) and the Figure 6/7-shaped breakdown (-breakdown).
func (o *observability) reportRun(off *core.OffloadResult, model energy.PowerModel) {
	if o.profileFile != "" && off.MobileProf != nil {
		f, err := os.Create(o.profileFile)
		if err == nil {
			err = off.MobileProf.WriteFolded(f, "mobile")
			if err == nil {
				err = off.ServerProf.WriteFolded(f, "server")
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "offloadrun: profile:", err)
			os.Exit(1)
		}
		fmt.Printf("profile: %s (folded stacks; feed to flamegraph.pl or speedscope)\n", o.profileFile)
		fmt.Printf("  mobile: %d samples over %v; server: %d samples over %v\n",
			off.MobileProf.Samples(), simtime.PS(off.MobileProf.Total()),
			off.ServerProf.Samples(), simtime.PS(off.ServerProf.Total()))
		fmt.Println(experiments.ProfileTable(off.MobileProf, off.ServerProf, 15))
	}
	if o.breakdown && o.tracer != nil {
		evs := o.tracer.Events()
		fmt.Println(analyze.TimeTable(analyze.Breakdown(evs)))
		fmt.Println(analyze.RadioTable(analyze.Radio(evs, model)))
	}
	if o.critPath && o.tracer != nil {
		cs := analyze.Crit(o.tracer.Events()).Top(o.exemplars)
		fmt.Println(analyze.CritTable(cs))
		fmt.Println(analyze.WhereTable(cs, 0.99))
	}
	if o.topo != nil {
		fmt.Printf("tiers (%s): %d placed on edge, %d on cloud, %d kept local\n",
			o.topo.EffectiveMode(), off.Stats.EdgePlaced, off.Stats.CloudPlaced, off.Stats.Declines)
	}
}

// finish writes the Chrome trace file and prints the metrics summary.
func (o *observability) finish() {
	if w := o.tracer.DropWarning(); w != "" {
		fmt.Fprintln(os.Stderr, "offloadrun:", w)
	}
	o.tracer.PublishDropped(o.metrics)
	if o.tracer != nil && o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "offloadrun: trace:", err)
			os.Exit(1)
		}
		if err := o.tracer.WriteChrome(f); err == nil {
			err = f.Close()
			if err == nil {
				fmt.Printf("trace: %d events -> %s (load in chrome://tracing or ui.perfetto.dev)\n",
					o.tracer.Len(), o.traceFile)
			}
		} else {
			f.Close()
			fmt.Fprintln(os.Stderr, "offloadrun: trace:", err)
			os.Exit(1)
		}
	}
	if o.metrics != nil {
		fmt.Println(report.MetricsTable("offload session metrics", o.metrics.Names(), o.metrics.Value))
		if hs := o.metrics.HistogramSummary(); hs != "" {
			fmt.Println(hs)
		}
	}
}

func main() {
	name := flag.String("w", "chess", "workload name (chess or a Table 4 program id)")
	irFile := flag.String("ir", "", "run a textual IR program file instead of a named workload")
	stdin := flag.String("stdin", "", "comma-separated integers fed to the program's scanf calls")
	cost := flag.Int64("cost", 1, "cost amplification for -ir programs")
	depth := flag.Int64("depth", 9, "chess difficulty (chess workload only)")
	turns := flag.Int64("turns", 2, "chess game turns (chess workload only)")
	showOut := flag.Bool("output", false, "print program output")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file of the offloaded run")
	profileFile := flag.String("profile", "", "write a folded-stack guest flamegraph profile of the offloaded run and print the top-functions table")
	breakdown := flag.Bool("breakdown", false, "print the per-offload time and radio-energy breakdown (Fig. 6/7 shape) replayed from the trace")
	critPath := flag.Bool("critpath", false, "print each job's critical-path decomposition and the where-the-tail-lives summary replayed from the trace")
	exemplars := flag.Int("exemplars", 0, "with -critpath: limit the per-job table to the N slowest jobs (0 keeps them all)")
	showMetrics := flag.Bool("metrics", false, "print the aggregated session metrics after the run")
	faultSpec := flag.String("faults", "", `inject link faults into the offloaded run, e.g. "drop=0.1,corrupt=0.02,outage=100ms-250ms,seed=7"`)
	serverFaultSpec := flag.String("server-faults", "", `inject server faults into the offloaded run, e.g. "crash=0@300ms,slow=0@100ms-2sx3,drain=0@1s"`)
	migrate := flag.Bool("migrate", false, "enable mid-flight offload migration: on a server fault, checkpoint/ship/resume the task on a spare host instead of falling back locally")
	tiersMode := flag.String("tiers", "", "place offloads over the mobile -> edge -> cloud hierarchy: 3way, edge-only or cloud-only (empty keeps the classic binary gate)")
	engineSpec := flag.String("engine", "fast", "execution engine: fast (pre-decoded) or ref (reference tree-walker)")
	bindStats := flag.Bool("bindstats", false, "print compilation-cache statistics (programs, hits, misses) after the run")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadrun: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "offloadrun: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	eng, err := interp.ParseEngine(*engineSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offloadrun: -engine: %v\n", err)
		os.Exit(1)
	}
	core.DefaultEngine = eng
	if *bindStats {
		defer func() {
			s := core.DefaultCache.Stats()
			fmt.Printf("compilation cache: %d programs, %d hits, %d misses (hit rate %.0f%%)\n",
				s.Entries, s.Hits, s.Misses, 100*s.HitRate())
		}()
	}

	var plan *faults.Plan
	if *faultSpec != "" {
		p, err := faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadrun: -faults: %v\n", err)
			os.Exit(1)
		}
		plan = p
	}
	var serverPlan *faults.ServerPlan
	if *serverFaultSpec != "" {
		p, err := faults.ParseServer(*serverFaultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadrun: -server-faults: %v\n", err)
			os.Exit(1)
		}
		serverPlan = p
	}
	o := newObservability(*traceFile, *profileFile, *breakdown, *showMetrics, *critPath, *exemplars)
	o.faults = plan
	o.serverFaults = serverPlan
	o.migrate = *migrate
	if *tiersMode != "" {
		mode, err := tiers.ParseMode(*tiersMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadrun: -tiers: %v\n", err)
			os.Exit(1)
		}
		topo := tiers.Default(2, 1)
		topo.Mode = mode
		o.topo = topo
	}
	if *irFile != "" {
		runIRFile(*irFile, *stdin, *cost, *showOut, o)
		o.finish()
		return
	}
	if *name == "chess" {
		runChess(*depth, *turns, *showOut, o)
		o.finish()
		return
	}
	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "offloadrun: unknown workload %q\n", *name)
		os.Exit(1)
	}
	var r *experiments.ProgramResult
	if o.sampleEvery > 0 {
		if plan != nil {
			fmt.Fprintln(os.Stderr, "offloadrun: -profile cannot be combined with -faults")
			os.Exit(1)
		}
		if o.topo != nil {
			fmt.Fprintln(os.Stderr, "offloadrun: -profile cannot be combined with -tiers")
			os.Exit(1)
		}
		r, err = experiments.RunProgramProfiled(w, o.tracer, o.metrics, o.sampleEvery)
	} else {
		r, err = experiments.RunProgramTiered(w, o.topo, plan, o.tracer, o.metrics)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "offloadrun: %v\n", err)
		os.Exit(1)
	}
	defer o.finish()
	defer o.reportRun(r.Fast, energy.FastModel())
	t := report.New(w.Name+" — "+w.Desc,
		"Run", "Time(s)", "Normalized", "Energy(mJ)", "Traffic(MB)", "Offloaded")
	t.Add("local (mobile only)", r.Local.Time.Seconds(), 1.0, r.Local.EnergyMJ, 0, "-")
	add := func(label string, off *core.OffloadResult, m energy.PowerModel) {
		mb := float64(off.LinkStats.TotalBytes()) * float64(workloads.Scale) / 1e6
		t.Add(label, off.Time.Seconds(), off.NormalizedTime(r.Local),
			off.Recorder.EnergyMJ(m), mb, fmt.Sprintf("%v", off.Offloaded()))
	}
	add("offload slow (802.11n)", r.Slow, energy.SlowModel())
	add("offload fast (802.11ac)", r.Fast, energy.FastModel())
	t.Note("speedup on fast network: %.2fx; coverage %.1f%%", r.Fast.Speedup(r.Local), 100*r.Coverage())
	fmt.Println(t)
	if plan != nil {
		fmt.Printf("faults (%s): %d injected; recovery: %d retries, %d aborts, %d local fallbacks; output identical to fault-free\n",
			plan.String(), r.Fast.FaultStats.Total(), r.Fast.Stats.Retries, r.Fast.Stats.Aborts, r.Fast.Stats.Fallbacks)
	}
	if serverPlan != nil {
		// Re-run the fast-network offload under the server-fault plan and
		// score it against the fault-free result above.
		var mig *offrt.Migration
		if *migrate {
			m := offrt.DefaultMigration()
			mig = &m
		}
		cell, err := experiments.RunServerChaosCell(r, serverPlan, mig, "cli")
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadrun: -server-faults: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("server faults (%s): %d migrations, %d crash retries, %d local fallbacks\n",
			cell.Plan, cell.Migrations, cell.CrashRetries, cell.Fallbacks)
		if !cell.Equal() {
			fmt.Fprintln(os.Stderr, "offloadrun: server-faulted run diverged from the fault-free run")
			os.Exit(1)
		}
		fmt.Println("server-faulted run identical to fault-free (output, exit code, memory digest)")
	}
	if *showOut {
		fmt.Println(r.Local.Output)
	}
}

func runChess(depth, turns int64, showOut bool, o *observability) {
	fw := core.NewFramework(core.FastNetwork)
	fw.CostScale = workloads.ChessCostScale
	o.attach(fw)
	mod := workloads.BuildChess(workloads.DefaultChessConfig())
	prof, err := fw.Profile(mod, workloads.ChessInput(depth-2, turns))
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun:", err)
		os.Exit(1)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun:", err)
		os.Exit(1)
	}
	local, err := fw.RunLocal(mod, workloads.ChessInput(depth, turns))
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun:", err)
		os.Exit(1)
	}
	off, err := fw.RunOffloaded(cres, workloads.ChessInput(depth, turns), offrt.Policy{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun:", err)
		os.Exit(1)
	}
	fmt.Printf("chess depth %d, %d turns\n", depth, turns)
	fmt.Printf("  local:    %v  (%.0f mJ)\n", local.Time, local.EnergyMJ)
	fmt.Printf("  offload:  %v  (%.0f mJ)  speedup %.2fx, battery %.0f%% saved\n",
		off.Time, off.EnergyMJ, off.Speedup(local), 100*(1-off.NormalizedEnergy(local)))
	for id, st := range off.PerTask {
		fmt.Printf("  task %d: %d offloads, %d declines, %.1f KB traffic, %d faults\n",
			id, st.Offloads, st.Declines, float64(st.TrafficBytes)/1024, st.Faults)
	}
	o.reportRun(off, fw.Power)
	if showOut {
		fmt.Println(off.Output)
	}
}

// runIRFile profiles, compiles and executes a user-written IR program.
func runIRFile(path, stdin string, cost int64, showOut bool, o *observability) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun:", err)
		os.Exit(1)
	}
	mod, err := ir.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun:", err)
		os.Exit(1)
	}
	mkIO := func() *interp.StdIO {
		io := interp.NewStdIO(nil)
		io.MaxBuffered = 1 << 20
		for _, tok := range strings.Split(stdin, ",") {
			if v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64); err == nil {
				io.AddInput(v)
			}
		}
		return io
	}
	fw := core.NewFramework(core.FastNetwork)
	fw.CostScale = cost
	o.attach(fw)
	prof, err := fw.Profile(mod, mkIO())
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun: profile:", err)
		os.Exit(1)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun: compile:", err)
		os.Exit(1)
	}
	local, err := fw.RunLocal(mod, mkIO())
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun: local:", err)
		os.Exit(1)
	}
	off, err := fw.RunOffloaded(cres, mkIO(), offrt.Policy{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "offloadrun: offload:", err)
		os.Exit(1)
	}
	match := "identical"
	if off.Output != local.Output {
		match = "MISMATCH"
	}
	fmt.Printf("%s: local %v -> offloaded %v (%.2fx speedup, outputs %s)\n",
		mod.Name, local.Time, off.Time, off.Speedup(local), match)
	for id, st := range off.PerTask {
		fmt.Printf("  task %d: %d offloads, %.1f KB traffic\n", id, st.Offloads, float64(st.TrafficBytes)/1024)
	}
	o.reportRun(off, fw.Power)
	if showOut {
		fmt.Print(off.Output)
	}
}
