// Command offloadbench regenerates the tables and figures of the paper's
// evaluation. Usage:
//
//	offloadbench -exp table1|table2|table3|table4|table5|fig6a|fig6b|fig7|fig8|all
//
// Table 1 accepts -depth to bound the most expensive chess difficulty.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1..table5, fig6a, fig6b, fig7, fig8, ablation, crossarch, or all")
	depth := flag.Int64("depth", 11, "maximum chess difficulty for table1")
	flag.Parse()

	run := func(id string) error {
		switch id {
		case "table1":
			fmt.Println(experiments.Table1(*depth))
		case "table2":
			fmt.Println(experiments.Table2())
		case "table3":
			t, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "table4":
			t, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "table5":
			fmt.Println(experiments.Table5())
		case "fig6a":
			t, _, err := experiments.Fig6a()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "fig6b":
			t, _, err := experiments.Fig6b()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "fig7":
			t, _, err := experiments.Fig7()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "fig8":
			s, _, err := experiments.Fig8()
			if err != nil {
				return err
			}
			fmt.Println(s)
		case "ablation":
			t, _, err := experiments.Ablation()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "crossarch":
			t, _, err := experiments.CrossArch()
			if err != nil {
				return err
			}
			fmt.Println(t)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "table3", "table4", "table5", "fig6a", "fig6b", "fig7", "fig8", "ablation", "crossarch"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "offloadbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
