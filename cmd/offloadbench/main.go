// Command offloadbench regenerates the tables and figures of the paper's
// evaluation. Usage:
//
//	offloadbench -exp table1|table2|table3|table4|table5|fig6a|fig6b|fig7|fig8|all
//	offloadbench -exp fleet -clients=64 -servers=4 -policy=est-aware
//	offloadbench -exp fleetscale -clients 1000000 -shards 0
//	offloadbench -exp tiers -edge-servers 4 -cloud-servers 1
//
// Run offloadbench -help for the full mode catalogue with one-line
// descriptions. Table 1 accepts -depth to bound the most expensive
// chess difficulty. The fleet experiment compares dispatch policies
// over a shared server pool and writes its machine-readable record to
// -fleet-out. The fleetscale experiment benchmarks the sharded
// parallel engine (parity gate, events/sec floor cells, the
// million-client headline run, and adaptive-vs-static admission over a
// diurnal curve), writing -scale-out. The tiers experiment sweeps the
// mobile -> edge -> cloud hierarchy through all three placement modes
// and writes -tiers-out. -shards selects the engine everywhere fleet
// simulations run: -1 forces the sequential reference, 0 auto-sizes to
// the CPU count, n >= 1 pins n worker shards — results are
// bit-identical across all of them. -cpuprofile writes a pprof CPU
// profile of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/report"
	"repro/internal/workloads"
)

// expModes is the -exp catalogue the usage text renders: every mode with
// a one-line description, so discovering an experiment does not require
// reading the experiments package.
var expModes = []struct{ name, desc string }{
	{"table1", "execution-time comparison across workloads and networks (Table 1)"},
	{"table2", "offloaded-task coverage and per-task statistics (Table 2)"},
	{"table3", "traffic volume per workload (Table 3)"},
	{"table4", "server-side execution coverage (Table 4)"},
	{"table5", "energy consumption per workload (Table 5)"},
	{"fig6a", "execution-time breakdown, slow network (Figure 6a)"},
	{"fig6b", "execution-time breakdown, fast network (Figure 6b)"},
	{"fig7", "overhead component breakdown (Figure 7)"},
	{"fig8", "power timeline of a representative run (Figure 8)"},
	{"ablation", "optimization ablation grid (prefetch, compression, batching, remote I/O)"},
	{"crossarch", "mobile/server architecture cross product"},
	{"chaos", "fault-injection campaign; with -server-faults, server-fault equivalence"},
	{"fleet", "dispatch-policy comparison over a shared server pool (BENCH_fleet.json)"},
	{"fleetscale", "sharded parallel engine benchmark, million-client headline (BENCH_fleet_scale.json)"},
	{"migrate", "mid-offload migration vs fallback-only recovery (BENCH_migrate.json)"},
	{"tiers", "3-way edge/cloud placement vs static single-tier baselines (BENCH_tiers.json)"},
	{"all", "every paper table and figure (table1..fig8, ablation, crossarch)"},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see the mode list in -help)")
	depth := flag.Int64("depth", 11, "maximum chess difficulty for table1")
	clients := flag.Int("clients", 64, "with -exp fleet/fleetscale/migrate: number of concurrent mobile clients (fleetscale defaults to 1000000)")
	servers := flag.Int("servers", 4, "with -exp fleet/migrate: size of the server pool")
	policy := flag.String("policy", "all", "with -exp fleet: dispatch policy (random, round-robin, least-loaded, est-aware) or all")
	seed := flag.Uint64("seed", 1, "with -exp fleet: simulation seed")
	shards := flag.Int("shards", 0, "fleet engine: -1 sequential reference, 0 one shard per CPU, n >= 1 that many shards (bit-identical results)")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "with -exp fleet: machine-readable sweep record path (empty to skip)")
	scaleOut := flag.String("scale-out", "BENCH_fleet_scale.json", "with -exp fleetscale: machine-readable bench record path (empty to skip)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path")
	serverFaults := flag.String("server-faults", "", "with -exp chaos: server-fault spec (e.g. crash=0@300ms,slow=0@100ms-2sx3); runs the workloads under it with migration enabled")
	migrateSeeds := flag.Int("migrate-seeds", 10, "with -exp migrate: number of benchmark seeds")
	migrateOut := flag.String("migrate-out", "BENCH_migrate.json", "with -exp migrate: machine-readable bench record path (empty to skip)")
	edgeServers := flag.Int("edge-servers", 4, "with -exp tiers: edge pool size (low-RTT, modest compute)")
	cloudServers := flag.Int("cloud-servers", 1, "with -exp tiers: cloud pool size (behind the WAN, high compute)")
	tiersOut := flag.String("tiers-out", "BENCH_tiers.json", "with -exp tiers: machine-readable bench record path (empty to skip)")
	observe := flag.String("w", "", "workload to deep-dive with -trace/-metrics instead of running -exp")
	traceFile := flag.String("trace", "", "with -w: write a Chrome trace_event JSON of the fast-network run")
	showMetrics := flag.Bool("metrics", false, "with -w: print the aggregated session metrics")
	showHist := flag.Bool("hist", false, "with -w: print the latency histogram snapshots (p50/p90/p99/max)")
	exemplars := flag.Int("exemplars", 0, "with -exp fleet/fleetscale: retain complete span trees for the N slowest / shed / migrated / faulted jobs plus an N-sized seeded baseline (0 disables the tail sampler)")
	critPath := flag.Bool("critpath", false, "with -w or -exp fleet: print the per-job critical-path table and the where-the-tail-lives summary from the trace")
	engineSpec := flag.String("engine", "fast", "execution engine: fast (pre-decoded) or ref (reference tree-walker)")
	bindStats := flag.Bool("bindstats", false, "print compilation-cache statistics (programs, hits, misses) after the experiments")
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "Usage: offloadbench [flags]\n\nExperiment modes (-exp):\n")
		for _, m := range expModes {
			fmt.Fprintf(w, "  %-12s %s\n", m.name, m.desc)
		}
		fmt.Fprintf(w, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "offloadbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	eng, err := interp.ParseEngine(*engineSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offloadbench: -engine: %v\n", err)
		os.Exit(1)
	}
	core.DefaultEngine = eng
	if *bindStats {
		defer func() {
			s := core.DefaultCache.Stats()
			fmt.Printf("compilation cache: %d programs, %d hits, %d misses (hit rate %.0f%%)\n",
				s.Entries, s.Hits, s.Misses, 100*s.HitRate())
		}()
	}

	if *observe != "" || *traceFile != "" || *showMetrics || *showHist {
		if err := runObserved(*observe, *traceFile, *showMetrics, *showHist, *critPath, *exemplars); err != nil {
			fmt.Fprintf(os.Stderr, "offloadbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(id string) error {
		switch id {
		case "table1":
			fmt.Println(experiments.Table1(*depth))
		case "table2":
			fmt.Println(experiments.Table2())
		case "table3":
			t, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "table4":
			t, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "table5":
			fmt.Println(experiments.Table5())
		case "fig6a":
			t, _, err := experiments.Fig6a()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "fig6b":
			t, _, err := experiments.Fig6b()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "fig7":
			t, _, err := experiments.Fig7()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "fig8":
			s, _, err := experiments.Fig8()
			if err != nil {
				return err
			}
			fmt.Println(s)
		case "ablation":
			t, _, err := experiments.Ablation()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "crossarch":
			t, _, err := experiments.CrossArch()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "chaos":
			if *serverFaults != "" {
				plan, err := faults.ParseServer(*serverFaults)
				if err != nil {
					return err
				}
				cells, err := experiments.ServerChaosSpecSweep(plan)
				if err != nil {
					return err
				}
				fmt.Println(experiments.ServerChaosTable(cells))
				migrations, retries, fallbacks := 0, 0, 0
				for _, c := range cells {
					migrations += c.Migrations
					retries += c.CrashRetries
					fallbacks += c.Fallbacks
					if !c.Equal() {
						return fmt.Errorf("chaos: %s under %s diverged from its fault-free run", c.Workload, c.Plan)
					}
				}
				fmt.Printf("server chaos: %d migrations, %d crash retries, %d fallbacks across %d workloads\n",
					migrations, retries, fallbacks, len(cells))
				return nil
			}
			cells, err := experiments.ChaosSweep()
			if err != nil {
				return err
			}
			fmt.Println(experiments.ChaosTable(cells))
			for _, c := range cells {
				if !c.Equal() {
					return fmt.Errorf("chaos: %s under %s diverged from its fault-free run", c.Workload, c.Plan.String())
				}
			}
		case "migrate":
			bench, err := experiments.MigrateSweep(*migrateSeeds, *clients, *servers)
			if err != nil {
				return err
			}
			fmt.Println(experiments.MigrateTable(bench))
			if err := bench.CheckFloor(); err != nil {
				return err
			}
			if *migrateOut != "" {
				if err := experiments.WriteMigrateBench(*migrateOut, bench); err != nil {
					return err
				}
				fmt.Printf("migrate: %d seeds -> %s\n", bench.Seeds, *migrateOut)
			}
		case "fleet":
			var pols []fleet.Policy
			if *policy != "all" {
				p, err := fleet.ParsePolicy(*policy)
				if err != nil {
					return err
				}
				pols = append(pols, p)
			}
			results, err := experiments.FleetSweep([]int{*clients}, *servers, *seed, engineShards(*shards), pols...)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FleetTable(results))
			if *fleetOut != "" {
				if err := experiments.WriteFleetBench(*fleetOut, results); err != nil {
					return err
				}
				fmt.Printf("fleet: %d cells -> %s\n", len(results), *fleetOut)
			}
			if *exemplars > 0 {
				if err := fleetExemplars(*clients, *servers, *seed, engineShards(*shards), *policy, *exemplars, *critPath); err != nil {
					return err
				}
			}
		case "tiers":
			bench, err := experiments.TierSweep(experiments.TierBenchLoads(), *edgeServers, *cloudServers, *seed)
			if err != nil {
				return err
			}
			fmt.Println(experiments.TierTable(bench))
			if err := bench.CheckFloor(); err != nil {
				return err
			}
			if *tiersOut != "" {
				if err := experiments.WriteTierBench(*tiersOut, bench); err != nil {
					return err
				}
				fmt.Printf("tiers: %d cells -> %s\n", len(bench.Cells), *tiersOut)
			}
		case "fleetscale":
			// -clients keeps its small fleet default; the headline scale
			// cell wants a million unless the user pinned a size.
			n := *clients
			explicit := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "clients" {
					explicit = true
				}
			})
			if !explicit {
				n = 1_000_000
			}
			bench, err := experiments.ScaleSweep(n, *shards, *exemplars)
			if err != nil {
				return err
			}
			fmt.Println(experiments.ScaleTable(bench))
			if err := bench.CheckFloor(); err != nil {
				return err
			}
			if *scaleOut != "" {
				if err := experiments.WriteFleetScaleBench(*scaleOut, bench); err != nil {
					return err
				}
				fmt.Printf("fleetscale: %d-core bench -> %s\n", bench.Cores, *scaleOut)
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "table3", "table4", "table5", "fig6a", "fig6b", "fig7", "fig8", "ablation", "crossarch"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "offloadbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// engineShards maps the -shards flag onto fleet.Config.Shards: -1 picks
// the sequential reference engine (Shards 0), 0 sizes the sharded engine
// to the machine, and a positive count is passed through.
func engineShards(n int) int {
	switch {
	case n < 0:
		return 0
	case n == 0:
		return runtime.NumCPU()
	default:
		return n
	}
}

// fleetExemplars deep-dives one fleet cell with the tail sampler on:
// re-runs the chosen policy with k exemplars per retention category and a
// bounded tracer ring, reports the retained set, and with -critpath prints
// the per-exemplar critical-path decomposition and tail summary.
func fleetExemplars(clients, servers int, seed uint64, shards int, policy string, k int, critPath bool) error {
	pol := fleet.EstAware
	if policy != "all" {
		p, err := fleet.ParsePolicy(policy)
		if err != nil {
			return err
		}
		pol = p
	}
	cfg := fleet.DefaultConfig(clients, servers, pol)
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.Exemplars = k
	tr := obs.NewTracer(0)
	cfg.Tracer = tr
	res, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("exemplars (%s): %d span trees retained (K=%d per category) in %d trace events\n",
		pol, len(res.Exemplars), k, tr.Len())
	if w := tr.DropWarning(); w != "" {
		fmt.Fprintln(os.Stderr, "offloadbench:", w)
	}
	if !critPath {
		return nil
	}
	keep := make(map[int64]bool, len(res.Exemplars))
	for _, ex := range res.Exemplars {
		keep[ex.Job] = true
	}
	// The ring also holds cheap KJob summaries of recent non-retained jobs;
	// the tables cover the retained exemplars only.
	cs := analyze.Crit(tr.Events())
	kept := &analyze.CritSummary{}
	for _, cp := range cs.Jobs {
		if keep[cp.Job] {
			kept.Jobs = append(kept.Jobs, cp)
		}
	}
	fmt.Println(analyze.CritTable(kept))
	fmt.Println(analyze.WhereTable(kept, 0.99))
	return nil
}

// runObserved evaluates one workload with the observability layer attached,
// writing the Chrome trace and/or printing the metrics summary.
func runObserved(name, traceFile string, showMetrics, showHist bool, critPath bool, exemplars int) error {
	if name == "" {
		return fmt.Errorf("-trace/-metrics/-hist need a workload: add -w <name>")
	}
	w := workloads.ByName(name)
	if w == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	var tracer *obs.Tracer
	if traceFile != "" || critPath {
		tracer = obs.NewTracer(0)
	}
	var metrics *obs.Metrics
	if showMetrics || showHist {
		metrics = obs.NewMetrics()
	}
	r, err := experiments.RunProgramObserved(w, tracer, metrics)
	if err != nil {
		return err
	}
	fmt.Printf("%s: local %v -> offloaded %v (%.2fx speedup)\n",
		w.Name, r.Local.Time, r.Fast.Time, r.Fast.Speedup(r.Local))
	if critPath && tracer != nil {
		cs := analyze.Crit(tracer.Events()).Top(exemplars)
		fmt.Println(analyze.CritTable(cs))
		fmt.Println(analyze.WhereTable(cs, 0.99))
	}
	if tracer != nil && traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := tracer.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s (load in chrome://tracing or ui.perfetto.dev)\n",
			tracer.Len(), traceFile)
	}
	if w := tracer.DropWarning(); w != "" {
		fmt.Fprintln(os.Stderr, "offloadbench:", w)
	}
	tracer.PublishDropped(metrics)
	if showMetrics {
		fmt.Println(report.MetricsTable(w.Name+" session metrics", metrics.Names(), metrics.Value))
	}
	if showHist {
		if hs := metrics.HistogramSummary(); hs != "" {
			fmt.Print(hs)
		} else {
			fmt.Println("(no histograms recorded)")
		}
	}
	return nil
}
