// Command offloadc runs the Native Offloader compiler over one workload and
// prints the compile report: profiling results, candidate estimation
// (Table 3 style), selected targets, partition statistics, and optionally
// the partitioned IR.
//
// Usage:
//
//	offloadc -w 458.sjeng [-dump mobile|server] [-bw 650000000]
//	offloadc -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("w", "chess", "workload name (chess or a Table 4 program id)")
	irFile := flag.String("ir", "", "compile a textual IR program file instead of a named workload")
	stdin := flag.String("stdin", "", "comma-separated integers fed to the program's scanf calls")
	cost := flag.Int64("cost", 1, "cost amplification for -ir programs")
	dump := flag.String("dump", "", "dump partitioned IR: mobile or server")
	list := flag.Bool("list", false, "list available workloads")
	image := flag.Bool("image", false, "print shared program image statistics for the compiled binary pair")
	flag.Parse()

	if *list {
		fmt.Println("chess  \tthe paper's running example (Figure 3)")
		for _, w := range workloads.All() {
			fmt.Printf("%s\t%s\n", w.Name, w.Desc)
		}
		return
	}

	fw := core.NewFramework(core.FastNetwork)
	var mod = workloads.BuildChess(workloads.DefaultChessConfig())
	profIO := workloads.ChessInput(8, 3)
	fw.CostScale = workloads.ChessCostScale
	if *irFile != "" {
		var err error
		mod, err = loadIR(*irFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offloadc: %v\n", err)
			os.Exit(1)
		}
		profIO = stdinIO(*stdin)
		fw.CostScale = *cost
	} else if *name != "chess" {
		w := workloads.ByName(*name)
		if w == nil {
			fmt.Fprintf(os.Stderr, "offloadc: unknown workload %q (try -list)\n", *name)
			os.Exit(1)
		}
		fw = fw.WithScale(workloads.Scale, w.CostScale)
		mod = w.Build()
		profIO = w.ProfileIO()
	}

	prof, err := fw.Profile(mod, profIO)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offloadc: profile: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(prof)

	cres, err := fw.Compile(mod, prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offloadc: compile: %v\n", err)
		os.Exit(1)
	}

	t := report.New("candidate estimation (Equation 1)",
		"Candidate", "Exec(s)", "Inv", "Mem(MB)", "Tg(s)", "Verdict")
	for _, c := range cres.Candidates {
		verdict := "rejected"
		switch {
		case c.Machine:
			verdict = c.Reason
		case c.Selected:
			verdict = "SELECTED"
		case c.Est.Tg > 0:
			verdict = "profitable (nested)"
		}
		t.Add(c.Name, c.Time.Seconds(), c.Invocations, float64(c.MemBytes)/1e6, c.Est.Tg.Seconds(), verdict)
	}
	fmt.Println(t)
	fmt.Println(cres.Summary())

	if *image {
		if err := printImageStats(fw, cres); err != nil {
			fmt.Fprintf(os.Stderr, "offloadc: -image: %v\n", err)
			os.Exit(1)
		}
	}

	switch *dump {
	case "mobile":
		fmt.Println(cres.Mobile)
	case "server":
		fmt.Println(cres.Server)
	case "":
	default:
		fmt.Fprintf(os.Stderr, "offloadc: -dump must be mobile or server\n")
		os.Exit(1)
	}
}

// printImageStats compiles both halves of the binary pair into shared
// program artifacts and reports the image footprint a server fleet would
// hold: logical size, content-deduplicated backing size, and what one
// copy-on-write session bind costs (nothing until it writes).
func printImageStats(fw *core.Framework, cres *compiler.Result) error {
	mobileProg, err := interp.Compile(cres.Mobile, interp.CompileConfig{
		Name: "mobile", Spec: fw.Mobile, Std: fw.Mobile,
		FuncBase: mem.FuncBaseMobile, InitUVAGlobals: true,
	}, fw.Cache)
	if err != nil {
		return err
	}
	serverProg, err := interp.Compile(cres.Server, interp.CompileConfig{
		Name: "server", Spec: fw.Server, Std: fw.Mobile,
		FuncBase: mem.FuncBaseServer, ShuffleFuncs: true, ShuffleGlobals: true,
	}, fw.Cache)
	if err != nil {
		return err
	}
	t := report.New("shared program images (compile-once / instantiate-many)",
		"Binary", "Pages", "Image(KiB)", "Unique(KiB)", "Bind(B)")
	for _, p := range []*interp.Program{mobileProg, serverProg} {
		img := p.Image()
		inst := p.NewInstance()
		t.Add(p.Name(), img.NumPages(),
			float64(img.Bytes())/1024, float64(img.UniqueBytes())/1024,
			inst.Mem.ResidentPrivateBytes())
	}
	fmt.Println(t)
	if fw.Cache != nil {
		s := fw.Cache.Stats()
		fmt.Printf("compilation cache: %d programs, %d hits, %d misses (hit rate %.0f%%)\n",
			s.Entries, s.Hits, s.Misses, 100*s.HitRate())
	}
	return nil
}

// loadIR reads and parses a textual IR program.
func loadIR(path string) (*ir.Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ir.Parse(string(data))
}

// stdinIO builds the scanf token stream from a comma-separated list.
func stdinIO(csv string) *interp.StdIO {
	io := interp.NewStdIO(nil)
	io.MaxBuffered = 1 << 20
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
			io.AddInput(v)
		}
	}
	return io
}
