// Quickstart: the paper's running example end to end.
//
// This example builds the Figure 3 chess game, profiles it on the mobile
// architecture, compiles it into the offloading-enabled mobile/server
// binary pair, and plays a game both locally and under the offload runtime
// on 802.11ac, printing the Table 1-style movement times and the speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/offrt"
	"repro/internal/workloads"
)

func main() {
	fw := core.NewFramework(core.FastNetwork)
	fw.CostScale = workloads.ChessCostScale

	// The "front end" output: the chess game's IR module.
	mod := workloads.BuildChess(workloads.DefaultChessConfig())

	// 1. Profile with a training input (difficulty 7, one turn).
	prof, err := fw.Profile(mod, workloads.ChessInput(7, 1))
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	fmt.Println("hot candidates on the profiling input:")
	fmt.Println(prof)

	// 2. Compile: target selection, memory unification, partitioning,
	// server-specific optimization.
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Println(cres.Summary())

	// 3. Play the same game (difficulty 10, two turns) locally and
	// offloaded.
	local, err := fw.RunLocal(mod, workloads.ChessInput(10, 2))
	if err != nil {
		log.Fatalf("local run: %v", err)
	}
	off, err := fw.RunOffloaded(cres, workloads.ChessInput(10, 2), offrt.Policy{})
	if err != nil {
		log.Fatalf("offloaded run: %v", err)
	}

	if local.Output != off.Output {
		log.Fatalf("outputs differ — the unified address space is broken")
	}
	fmt.Printf("difficulty 10, smartphone only:  %v  (%8.0f mJ)\n", local.Time, local.EnergyMJ)
	fmt.Printf("difficulty 10, with offloading:  %v  (%8.0f mJ)\n", off.Time, off.EnergyMJ)
	fmt.Printf("speedup %.2fx, battery saving %.0f%%, traffic %.1f KB\n",
		off.Speedup(local), 100*(1-off.NormalizedEnergy(local)),
		float64(off.LinkStats.TotalBytes())/1024)
	fmt.Println("\ngame output (identical in both runs):")
	fmt.Print(off.Output)
}
