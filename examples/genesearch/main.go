// Genesearch: a near-ideal offload.
//
// The 456.hmmer-style gene-sequence search takes only small initialized
// parameters as live-in data: its working state materializes on the server
// as zero-fill pages, so almost nothing crosses the network and the speedup
// approaches the raw platform ratio (Section 5.1 singles hmmer out for
// exactly this).
//
//	go run ./examples/genesearch
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/offrt"
	"repro/internal/workloads"
)

func main() {
	w := workloads.ByName("456.hmmer")
	fw := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, w.CostScale)

	mod := w.Build()
	prof, err := fw.Profile(mod, w.ProfileIO())
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	local, err := fw.RunLocal(mod, w.EvalIO())
	if err != nil {
		log.Fatalf("local: %v", err)
	}
	off, err := fw.RunOffloaded(cres, w.EvalIO(), offrt.Policy{})
	if err != nil {
		log.Fatalf("offload: %v", err)
	}

	fmt.Printf("gene sequence search (%s)\n", w.Desc)
	fmt.Printf("  local:     %v\n", local.Time)
	fmt.Printf("  offloaded: %v (speedup %.2fx)\n", off.Time, off.Speedup(local))
	for id, st := range off.PerTask {
		fmt.Printf("  task %d moved only %.1f KB across the network (%d prefetched pages, %d faults)\n",
			id, float64(st.TrafficBytes)/1024, st.PrefetchPgs, st.Faults)
	}
	fmt.Printf("  ideal (zero-overhead) time: %v — the offloaded run is within %.1f%% of it\n",
		off.IdealTime(), 100*(float64(off.Time)/float64(off.IdealTime())-1))
}
