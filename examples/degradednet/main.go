// Degradednet: the dynamic estimator surviving a failing network.
//
// Section 4 of the paper motivates run-time (rather than compile-time-only)
// offload decisions with "unfavorable situations such as slow network
// connection". This example runs the three-move chess game on a link that
// collapses to dial-up speeds after the first move: the first getAITurn
// offloads, the remaining ones are declined and execute locally, and the
// game still finishes with the right output.
//
//	go run ./examples/degradednet
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/offrt"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

func main() {
	fw := core.NewFramework(core.FastNetwork)
	fw.CostScale = workloads.ChessCostScale
	mod := workloads.BuildChess(workloads.DefaultChessConfig())

	prof, err := fw.Profile(mod, workloads.ChessInput(7, 1))
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	local, err := fw.RunLocal(mod, workloads.ChessInput(9, 3))
	if err != nil {
		log.Fatalf("local: %v", err)
	}

	// Healthy 802.11ac for the first second of simulated time, then a
	// 2 kbps crawl for the rest of the game.
	link := netsim.Fast80211AC()
	link.Phases = []netsim.Phase{
		{Until: simtime.Second, BandwidthBps: link.BandwidthBps},
		{Until: 1 << 62, BandwidthBps: 2_000},
	}
	fw.Link = link

	off, err := fw.RunOffloaded(cres, workloads.ChessInput(9, 3), offrt.Policy{})
	if err != nil {
		log.Fatalf("offload: %v", err)
	}
	if off.Output != local.Output {
		log.Fatal("outputs diverged")
	}

	fmt.Println("three-move chess game on a network that collapses after 1s:")
	for id, st := range off.PerTask {
		fmt.Printf("  task %d (getAITurn): %d move(s) offloaded, %d declined by the dynamic estimator\n",
			id, st.Offloads, st.Declines)
	}
	fmt.Printf("  local-only time:   %v\n", local.Time)
	fmt.Printf("  adaptive time:     %v (%.2fx)\n", off.Time, off.Speedup(local))
	fmt.Println("  output identical to the local run — the game survived the outage.")
}
