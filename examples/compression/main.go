// Compression: the dynamic estimator in action.
//
// The 164.gzip-style compressor moves its entire input and output across
// the network, so Equation 1 only pays off when the link is fast. This
// example runs the same offloading-enabled binary on 802.11n and 802.11ac:
// the runtime's dynamic performance estimation declines to offload on the
// slow network (the starred bar of Figure 6) and offloads on the fast one.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/offrt"
	"repro/internal/workloads"
)

func main() {
	w := workloads.ByName("164.gzip")

	fast := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, w.CostScale)
	slow := core.NewFramework(core.SlowNetwork).WithScale(workloads.Scale, w.CostScale)

	mod := w.Build()
	prof, err := fast.Profile(mod, w.ProfileIO())
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	cres, err := fast.Compile(mod, prof)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	local, err := fast.RunLocal(mod, w.EvalIO())
	if err != nil {
		log.Fatalf("local: %v", err)
	}

	for _, env := range []struct {
		name string
		fw   *core.Framework
	}{{"802.11n (slow)", slow}, {"802.11ac (fast)", fast}} {
		off, err := env.fw.RunOffloaded(cres, w.EvalIO(), offrt.Policy{})
		if err != nil {
			log.Fatalf("%s: %v", env.name, err)
		}
		verdict := "OFFLOADED"
		if !off.Offloaded() {
			verdict = "declined by the dynamic estimator (ran locally)"
		}
		fmt.Printf("%-16s %v vs local %v (%.2fx) — %s\n",
			env.name, off.Time, local.Time, off.Speedup(local), verdict)
		for _, st := range off.PerTask {
			if st.Declines > 0 {
				fmt.Printf("%-16s   estimator: %d declines — the %0.f MB transfer would cost more than the compute saves\n",
					"", st.Declines, float64(w.Paper.TrafficMB))
			}
		}
	}
}
