// Bigendian: offloading across byte orders.
//
// The paper's evaluation pair (ARM + x86) is all little-endian, so its
// endianness translation never fires. This example retargets the server to
// a big-endian 32-bit machine: the compiler lowers the server binary
// against the mobile (little-endian) standard, inserting byte-order
// translation on every memory access, and the offloaded run still produces
// bit-identical output.
//
//	go run ./examples/bigendian
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/offrt"
	"repro/internal/workloads"
)

func main() {
	w := workloads.ByName("429.mcf")
	fw := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, w.CostScale)
	fw.Server = arch.POWER32BE() // big-endian server

	mod := w.Build()
	prof, err := fw.Profile(mod, w.ProfileIO())
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	local, err := fw.RunLocal(mod, w.EvalIO())
	if err != nil {
		log.Fatalf("local: %v", err)
	}
	off, err := fw.RunOffloaded(cres, w.EvalIO(), offrt.Policy{ForceOffload: true})
	if err != nil {
		log.Fatalf("offload: %v", err)
	}

	fmt.Printf("server architecture: %s\n", fw.Server)
	if local.Output == off.Output {
		fmt.Println("outputs identical: endianness translation preserved every value")
	} else {
		log.Fatal("OUTPUT MISMATCH — endianness translation failed")
	}
	fmt.Printf("local %v -> offloaded %v (%.2fx)\n", local.Time, off.Time, off.Speedup(local))
	fmt.Println("note: each server memory access pays the translation cost the")
	fmt.Println("compiler inserted; the paper's ARM/x86 pair avoids it entirely.")
}
