GO ?= go

.PHONY: check build vet test bench golden fuzz chaos

## check: the tier-1 verification — build, vet, race-enabled tests, and a
## short fuzz smoke over the hardened wire decoder.
check: build vet
	$(GO) test -race ./...
	$(GO) test ./internal/offrt/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 5s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: the observability hot-path allocation benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'PageFaultTrace' -benchmem ./internal/obs/

## golden: regenerate the Chrome-export and metrics-summary golden files.
golden:
	$(GO) test ./internal/obs/ -run Golden -update

## fuzz: a longer fuzzing session over the wire decoder.
fuzz:
	$(GO) test ./internal/offrt/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 60s

## chaos: the fault-injection campaign — every workload under the
## drop-rate x outage grid, asserting bit-identical output vs fault-free.
chaos:
	$(GO) test ./internal/experiments/ -run '^TestChaos' -v
