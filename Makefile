GO ?= go

.PHONY: check build vet test bench bindsmoke golden fuzz chaos fleet profsmoke migsmoke scalesmoke tiersmoke critsmoke

## check: the tier-1 verification — build, vet, race-enabled tests, a
## short fuzz smoke over the hardened wire decoder, the fleet scheduler
## smoke, the sharded-engine scale smoke, the profiler/breakdown CLI
## smoke, the shared-image bind smoke, the mid-offload migration
## smoke, the multi-tier placement smoke, and the span-tracing smoke.
check: build vet fleet scalesmoke profsmoke bindsmoke migsmoke tiersmoke critsmoke
	$(GO) test -race ./...
	$(GO) test ./internal/offrt/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 5s

## bindsmoke: the O(1)-bind contract — a fresh copy-on-write instance of a
## cached Program must hold zero private resident bytes (binding may not
## allocate a full image copy) and start bit-identical to a private machine.
bindsmoke:
	$(GO) test ./internal/interp/ -run '^TestBindSmoke$$' -count=1

## scalesmoke: the sharded-engine contract at a size worth trusting — a
## 10k-client sweep through the parallel engine must finish promptly and
## match the sequential reference byte for byte.
scalesmoke:
	FLEET_SCALESMOKE=1 $(GO) test ./internal/fleet/ -run '^TestScaleSmoke$$' -count=1

## migsmoke: the mid-offload migration contract — a drain halfway through
## an offloaded task checkpoints, ships and resumes on a spare with output
## and memory digest bit-identical to the fault-free run, and the shipped
## checkpoint scales with dirty pages (a fresh instance ships zero).
migsmoke:
	$(GO) test ./internal/offrt/ -run '^TestMigrationSmoke$$' -count=1

## tiersmoke: the multi-tier placement contract — a hot 3-way cell must
## beat both static baselines on geomean, actually promote and demote
## across the backhaul, and stay byte-identical across shard counts.
tiersmoke:
	$(GO) test ./internal/fleet/ -run '^TestTierSmoke$$' -count=1

## critsmoke: the span-tracing contract — a tiered cell with the tail
## sampler on must retain exactly the slowest-K jobs with complete span
## trees inside the ring bound, each exemplar's critical-path segments
## must sum bit-exactly to its end-to-end latency, and the retained set
## must be byte-identical across shard counts.
critsmoke:
	$(GO) test ./internal/fleet/ -run '^TestCritSmoke$$' -count=1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: the interpreter/memory micro-benchmarks (fast vs reference
## engine, with steps/sec and allocations) plus the observability hot-path
## allocation benchmarks. Writes the machine-readable records to
## BENCH_interp.json (fails if the fast engine regresses below the 5x
## steps/sec floor or allocates in steady state) and BENCH_bind.json
## (fails if a cached bind is under 50x faster than the first compile or
## a session's copy-on-write resident bytes are under 10x below a private
## image copy). Also writes BENCH_fleet.json and BENCH_migrate.json; the
## migration bench fails unless migration-enabled recovery beats
## fallback-only on both aggregate p99 and geomean. The fleetscale bench
## drives a million clients through the sharded engine and writes
## BENCH_fleet_scale.json; it fails if the engines disagree byte for
## byte, if adaptive admission stops beating static bounds on the
## diurnal cell, (on >= 4 cores) if the parallel engine is under 4x
## the sequential events/sec, or if the 100k-client exemplar cell
## stops retaining the 64 slowest jobs as complete span trees with
## exact segment sums inside the trace-ring bound. The tiers bench sweeps the mobile -> edge
## -> cloud hierarchy through all three placement modes and writes
## BENCH_tiers.json; it fails unless 3-way placement holds both
## aggregate tails at or under each static baseline with shard parity
## and live cross-tier migration.
bench:
	$(GO) test -run '^$$' -bench 'InterpLoop|LoadStore|CallReturn|Digest|Bind' -benchmem ./internal/interp/
	$(GO) test -run '^$$' -bench 'PageFaultTrace' -benchmem ./internal/obs/
	BENCH_JSON=$(CURDIR)/BENCH_interp.json $(GO) test ./internal/interp/ -run '^TestBenchJSON$$' -count=1 -v
	BENCH_BIND_JSON=$(CURDIR)/BENCH_bind.json $(GO) test ./internal/interp/ -run '^TestBindBenchJSON$$' -count=1 -v
	$(GO) run ./cmd/offloadbench -exp fleet -fleet-out=$(CURDIR)/BENCH_fleet.json
	$(GO) run ./cmd/offloadbench -exp migrate -migrate-out=$(CURDIR)/BENCH_migrate.json
	$(GO) run ./cmd/offloadbench -exp fleetscale -clients 1000000 -shards 0 -exemplars 64 -scale-out=$(CURDIR)/BENCH_fleet_scale.json
	$(GO) run ./cmd/offloadbench -exp tiers -tiers-out=$(CURDIR)/BENCH_tiers.json

## golden: regenerate every golden file (Chrome export, metrics summary,
## breakdown tables) through the shared goldentest -update flag.
golden:
	$(GO) test ./internal/obs/ ./internal/obs/analyze/ -update

## profsmoke: end-to-end smoke of the trace-analysis pipeline — a chess
## run with the guest profiler and the breakdown report enabled, checking
## the folded profile is non-empty.
profsmoke:
	$(GO) run ./cmd/offloadrun -w chess -depth 8 -turns 1 \
		-profile $(CURDIR)/.profsmoke.folded -breakdown > /dev/null
	test -s $(CURDIR)/.profsmoke.folded
	rm -f $(CURDIR)/.profsmoke.folded

## fuzz: a longer fuzzing session over the wire decoder.
fuzz:
	$(GO) test ./internal/offrt/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 60s

## fleet: the server-fleet scheduler smoke — determinism, the est-aware
## vs random property, and admission sheds under overload, under -race.
fleet:
	$(GO) test -race ./internal/fleet/ ./internal/experiments/ -run 'Fleet|Pool|Sheds|Admission'

## chaos: the fault-injection campaign — every workload under the
## drop-rate x outage grid, asserting bit-identical output vs fault-free.
chaos:
	$(GO) test ./internal/experiments/ -run '^TestChaos' -v
