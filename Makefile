GO ?= go

.PHONY: check build vet test bench golden

## check: the tier-1 verification — build, vet, race-enabled tests.
check: build vet
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: the observability hot-path allocation benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'PageFaultTrace' -benchmem ./internal/obs/

## golden: regenerate the Chrome-export and metrics-summary golden files.
golden:
	$(GO) test ./internal/obs/ -run Golden -update
